"""Differential + invariant tests of the array-native layout core.

The compiled engines (`repro.phys.compiled`) must reproduce the
pure-Python reference flow **bit-identically** — same RNG streams,
same operation order per cell — across ISCAS-85, ITC'99 and
random-logic circuits: placements, routes, FEOL stubs and LayoutCost
all compare with ``==``, never ``approx``.  The shared array geometry
(`repro.phys.geometry`) is likewise pinned against the scalar hint
helpers, and the classic layout invariants (legality, fixed TIE
cells, capacity spill order, stub accounting) are asserted for both
engines.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro.adversary.features import _pair_features, build_candidates
from repro.attacks.hints import proximity_score
from repro.benchgen import GeneratorConfig, load_iscas85, load_itc99
from repro.benchgen.random_logic import generate_random_circuit
from repro.locking import AtpgLockConfig, atpg_lock
from repro.netlist.cell_library import ROW_HEIGHT_UM, SITE_WIDTH_UM
from repro.phys.compiled import (
    _collect_pins_fast,
    _RowOccupancy,
    place_compiled,
    route_compiled,
    split_compiled,
)
from repro.phys.cost import measure_layout_cost
from repro.phys.dispatch import layout_engine_knob, resolve_layout_engine
from repro.phys.floorplan import build_floorplan
from repro.phys.geometry import exact_hypot, score_block, stub_arrays
from repro.phys.layout import build_locked_layout
from repro.phys.lifting import lift_key_nets
from repro.phys.placement import place, place_reference
from repro.phys.routing import ROUTING_PAIRS, collect_pins, route_reference
from repro.phys.split import split_reference
from repro.phys.tie_cells import randomize_tie_cells
from repro.utils.rng import rng_for


def _locked(circuit, key_bits, seed=2019):
    locked, _ = atpg_lock(
        circuit, AtpgLockConfig(key_bits=key_bits, seed=seed, run_lec=False)
    )
    return locked


def _flow_pair(locked, seed=2019, split=4):
    """Reference and compiled flows run side by side on one design."""
    circuit = locked.circuit
    plan = build_floorplan(circuit)
    rng = rng_for(seed, "tie-randomize", circuit.name)
    fixed = randomize_tie_cells(locked.tie_cells, plan, rng)
    key_nets = set(locked.tie_cells)
    flows = {}
    for label, placer, router, splitter in (
        ("reference", place_reference, route_reference, split_reference),
        ("compiled", place_compiled, route_compiled, split_compiled),
    ):
        placement = placer(
            circuit, plan, seed=seed, fixed_cells=fixed, ignore_nets=key_nets
        )
        routing = router(
            circuit, placement, plan, seed=seed, key_nets=key_nets
        )
        lifting = lift_key_nets(routing, locked.key_bits, placement, split)
        view = splitter(circuit, routing, split, key_nets)
        flows[label] = (plan, placement, routing, lifting, view)
    return flows


CIRCUITS = {
    "iscas85": lambda: load_iscas85("c880"),
    "itc99": lambda: load_itc99("b14", scale=0.2).combinational_core(),
    "random": lambda: generate_random_circuit(
        GeneratorConfig(12, 6, 220), seed=11, name="rand220"
    ),
}


@pytest.fixture(scope="module", params=sorted(CIRCUITS))
def engine_flows(request):
    locked = _locked(CIRCUITS[request.param](), key_bits=12)
    flows = _flow_pair(locked)
    flows["circuit"] = locked.circuit
    return flows


def _unpack(engine_flows):
    return engine_flows["reference"], engine_flows["compiled"]


# ----------------------------------------------------------------------
# Differential: compiled == reference, bit for bit
# ----------------------------------------------------------------------
def test_placements_bit_identical(engine_flows):
    (_, p_ref, *_), (_, p_cmp, *_) = _unpack(engine_flows)
    assert p_ref.locations == p_cmp.locations
    assert list(p_ref.locations) == list(p_cmp.locations)
    assert p_ref.widths_sites == p_cmp.widths_sites
    assert p_ref.fixed == p_cmp.fixed


def test_routes_bit_identical(engine_flows):
    (_, _, r_ref, *_), (_, _, r_cmp, *_) = _unpack(engine_flows)
    assert list(r_ref.nets) == list(r_cmp.nets)
    assert r_ref.pair_usage == r_cmp.pair_usage
    assert r_ref.pair_capacity == r_cmp.pair_capacity
    for net in r_ref.nets:
        assert r_ref.nets[net] == r_cmp.nets[net]


def test_lifting_and_split_bit_identical(engine_flows):
    (*_, l_ref, v_ref), (*_, l_cmp, v_cmp) = _unpack(engine_flows)
    assert l_ref.lifted_nets == l_cmp.lifted_nets
    assert l_ref.via_columns == l_cmp.via_columns
    assert l_ref.eco_rerouted == l_cmp.eco_rerouted
    assert l_ref.eco_buffers == l_cmp.eco_buffers
    assert v_ref.visible_nets == v_cmp.visible_nets
    assert v_ref.source_stubs == v_cmp.source_stubs
    assert v_ref.sink_stubs == v_cmp.sink_stubs
    # stub coordinates must be plain floats on both sides (the arrays
    # are views, not the API)
    for stub in v_cmp.source_stubs[:20] + v_ref.source_stubs[:20]:
        assert type(stub.x) is float and type(stub.y) is float


def test_layout_cost_bit_identical(engine_flows):
    circuit = engine_flows["circuit"]
    (plan, _, r_ref, *_), (_, _, r_cmp, *_) = _unpack(engine_flows)
    cost_ref = measure_layout_cost(circuit, plan, r_ref)
    cost_cmp = measure_layout_cost(circuit, plan, r_cmp)
    assert asdict(cost_ref) == asdict(cost_cmp)


def test_split_layers_match_across_engines(engine_flows):
    """Every split layer agrees, not just the one the fixture used."""
    circuit = engine_flows["circuit"]
    (_, _, r_ref, *_), (_, _, r_cmp, *_) = _unpack(engine_flows)
    for split in (4, 6):
        v_ref = split_reference(circuit, r_ref, split)
        v_cmp = split_compiled(circuit, r_cmp, split)
        assert v_ref.source_stubs == v_cmp.source_stubs
        assert v_ref.sink_stubs == v_cmp.sink_stubs
        assert v_ref.visible_nets == v_cmp.visible_nets


def test_collect_pins_fast_identical(engine_flows):
    circuit = engine_flows["circuit"]
    (plan, p_ref, *_), _ = _unpack(engine_flows)
    assert collect_pins(circuit, p_ref, plan) == _collect_pins_fast(
        circuit, p_ref, plan
    )


# ----------------------------------------------------------------------
# Layout invariants (both engines)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["reference", "compiled"])
def test_legalized_placement_never_overlaps(engine_flows, engine):
    plan, placement, *_ = engine_flows[engine]
    occupied = {}
    for name, (x, y) in placement.locations.items():
        row = round(y / ROW_HEIGHT_UM)
        start = round(x / SITE_WIDTH_UM)
        width = placement.widths_sites[name]
        assert 0 <= row < plan.num_rows
        assert 0 <= start and start + width <= plan.sites_per_row
        for site in range(start, start + width):
            assert (row, site) not in occupied, f"overlap at {(row, site)}"
            occupied[(row, site)] = name


@pytest.mark.parametrize("engine", ["reference", "compiled"])
def test_fixed_tie_cells_keep_their_sites(engine_flows, engine):
    plan, placement, *_ = engine_flows[engine]
    for name in placement.fixed:
        x, y = placement.locations[name]
        row, site = plan.snap(x, y)
        assert placement.locations[name] == (
            plan.site_x(site), plan.row_y(row),
        )


@pytest.mark.parametrize("engine", ["reference", "compiled"])
def test_routing_stays_within_track_capacity(engine_flows, engine):
    """No pair overflows — unless the whole stack is saturated.

    ``_assign_pair`` only returns an over-capacity pair when every pair
    rejected the net; usage never shrinks, so if any pair ended above
    capacity, every pair must have been within one (longest) net of its
    capacity at that moment — a true invariant of the spill order.
    """
    _, _, routing, *_ = engine_flows[engine]
    longest = max(
        (
            sum(r.length for r in net.routes)
            for net in routing.nets.values()
            if not net.is_key_net
        ),
        default=0.0,
    )
    overflowing = [
        pair
        for pair, used in routing.pair_usage.items()
        if used > routing.pair_capacity[pair]
    ]
    for pair in routing.pair_usage:
        assert pair in ROUTING_PAIRS
    if overflowing:
        for pair, used in routing.pair_usage.items():
            assert used + longest > routing.pair_capacity[pair]
    else:
        for pair, used in routing.pair_usage.items():
            assert used <= routing.pair_capacity[pair]


def test_assign_pair_spill_order():
    """A net spills one pair up when its preferred pair is full, keeps
    climbing while pairs stay full, and falls back downward (then to
    the preferred pair) when everything above is saturated."""
    from repro.phys.routing import Routing, _assign_pair

    def fresh():
        routing = Routing()
        for pair in ROUTING_PAIRS:
            routing.pair_capacity[pair] = 100.0
            routing.pair_usage[pair] = 0.0
        return routing

    routing = fresh()
    assert _assign_pair(routing, 2, 10.0) == 2
    routing.pair_usage[2] = 95.0
    assert _assign_pair(routing, 2, 10.0) == 4  # spill one pair up
    routing.pair_usage[4] = 95.0
    assert _assign_pair(routing, 2, 10.0) == 6  # keep climbing
    routing.pair_usage[6] = 95.0
    routing.pair_usage[8] = 95.0
    routing.pair_usage[4] = 50.0
    assert _assign_pair(routing, 6, 10.0) == 4  # overflow falls downward
    for pair in ROUTING_PAIRS:
        routing.pair_usage[pair] = 100.0
    assert _assign_pair(routing, 4, 10.0) == 4  # total saturation: preferred


@pytest.mark.parametrize("engine", ["reference", "compiled"])
def test_stub_counts_match_broken_net_accounting(engine_flows, engine):
    _, _, routing, _, view = engine_flows[engine]
    broken = {s.net for s in view.source_stubs}
    assert view.broken_net_count == len(broken)
    assert broken | view.visible_nets == set(routing.nets)
    assert not broken & view.visible_nets
    # every broken net contributes one sink stub per broken route
    sink_nets = {}
    for stub in view.sink_stubs:
        sink_nets[stub.net] = sink_nets.get(stub.net, 0) + 1
    assert set(sink_nets) == broken


# ----------------------------------------------------------------------
# Shared geometry core
# ----------------------------------------------------------------------
def test_exact_hypot_matches_math_hypot():
    import math

    rng = np.random.default_rng(5)
    dx = rng.uniform(0, 700, 4096)
    dy = rng.uniform(0, 700, 4096)
    out = exact_hypot(dx, dy)
    for i in range(0, 4096, 37):
        assert out[i] == math.hypot(dx[i], dy[i])


def test_score_block_matches_scalar_proximity_score(engine_flows):
    view = engine_flows["compiled"][4]
    arrays = stub_arrays(view)
    stop = min(40, arrays.num_sinks)
    block = score_block(arrays, 0, stop)
    for i in range(stop):
        sink = view.sink_stubs[i]
        for j in range(0, arrays.num_sources, 7):
            source = view.source_stubs[j]
            assert block.score[i, j] == proximity_score(source, sink)


def test_feature_matrix_matches_scalar_reference(engine_flows):
    view = engine_flows["compiled"][4]
    candidates = build_candidates(view, per_sink=8, with_labels=True)
    branches = {}
    for stub in view.source_stubs:
        branches[stub.net] = branches.get(stub.net, 0) + 1
    for row in range(0, candidates.num_pairs, 11):
        sink = candidates.sinks[int(candidates.pairs[row, 0])]
        source = candidates.sources[int(candidates.pairs[row, 1])]
        expected = _pair_features(
            source, sink, candidates.span, branches[source.net]
        )
        assert tuple(candidates.features[row]) == expected
        assert candidates.labels[row] == (
            1.0 if source.net == sink.net else 0.0
        )


def test_stub_array_cache_invalidates_on_mutation(engine_flows):
    view = engine_flows["compiled"][4]
    first = stub_arrays(view)
    assert stub_arrays(view) is first  # cached
    view.source_stubs = list(view.source_stubs[:-1])
    rebuilt = stub_arrays(view)
    assert rebuilt is not first
    assert rebuilt.num_sources == first.num_sources - 1


def test_feol_view_pickles_without_array_cache(engine_flows):
    import pickle

    view = engine_flows["compiled"][4]
    stub_arrays(view)
    restored = pickle.loads(pickle.dumps(view))
    assert not hasattr(restored, "_stub_arrays")
    assert restored.source_stubs == view.source_stubs


# ----------------------------------------------------------------------
# Pin-centre precompute
# ----------------------------------------------------------------------
def test_pin_centers_computed_once_and_exact(engine_flows):
    _, placement, *_ = engine_flows["compiled"]
    centers = placement.pin_centers()
    assert placement.pin_centers() is centers
    for name, (x, y) in list(placement.locations.items())[:25]:
        width = placement.widths_sites.get(name, 1) * SITE_WIDTH_UM
        assert placement.pin_location(name) == (
            x + width / 2.0, y + ROW_HEIGHT_UM / 2.0,
        )


def test_placement_pickles_without_pin_cache(engine_flows):
    import pickle

    _, placement, *_ = engine_flows["compiled"]
    placement.pin_centers()
    restored = pickle.loads(pickle.dumps(placement))
    assert restored._pin_centers is None
    assert restored.locations == placement.locations
    assert restored.pin_location(
        next(iter(placement.locations))
    ) == placement.pin_location(next(iter(placement.locations)))


# ----------------------------------------------------------------------
# Dispatcher knob
# ----------------------------------------------------------------------
def test_layout_engine_knob_default(monkeypatch):
    monkeypatch.delenv("REPRO_LAYOUT_ENGINE", raising=False)
    assert layout_engine_knob() == "auto"
    assert resolve_layout_engine() == "compiled"  # numpy is available


@pytest.mark.parametrize("value", ["compiled", "reference"])
def test_layout_engine_knob_forced(monkeypatch, value):
    monkeypatch.setenv("REPRO_LAYOUT_ENGINE", value)
    assert layout_engine_knob() == value
    assert resolve_layout_engine() == value


def test_layout_engine_knob_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_LAYOUT_ENGINE", "turbo")
    with pytest.raises(ValueError):
        layout_engine_knob()


def test_place_dispatches_on_knob(monkeypatch):
    circuit = generate_random_circuit(
        GeneratorConfig(6, 3, 40), seed=3, name="tiny"
    )
    plan = build_floorplan(circuit)
    monkeypatch.setenv("REPRO_LAYOUT_ENGINE", "reference")
    via_reference = place(circuit, plan, seed=5)
    monkeypatch.setenv("REPRO_LAYOUT_ENGINE", "compiled")
    via_compiled = place(circuit, plan, seed=5)
    assert via_reference.locations == via_compiled.locations


def test_layout_cache_key_tracks_engine(monkeypatch):
    from repro.runner.spec import CellSpec
    from repro.runner.stages import layout_payload, unprotected_payload
    from repro.utils.artifact_cache import spec_key

    cell = CellSpec(benchmark="b14", scale=0.03, key_bits=16)
    keys = {}
    for engine in ("reference", "compiled"):
        monkeypatch.setenv("REPRO_LAYOUT_ENGINE", engine)
        keys[engine] = (
            spec_key(layout_payload(cell)),
            spec_key(unprotected_payload(cell)),
        )
        assert layout_payload(cell)["engine"] == engine
    assert keys["reference"][0] != keys["compiled"][0]
    assert keys["reference"][1] != keys["compiled"][1]


# ----------------------------------------------------------------------
# Row-occupancy structure (the compiled legalizer's core)
# ----------------------------------------------------------------------
def test_row_occupancy_matches_reference_gap_scan():
    """Randomised cross-check against the reference nearest-gap scan."""
    import random

    def reference_scan(reserved, site, width, spr):
        runs = sorted(reserved)
        best, best_cost, cursor = None, float("inf"), 0
        for run_start, run_end in runs + [(spr, spr)]:
            gap_start, gap_end = cursor, run_start
            cursor = max(cursor, run_end)
            if gap_end - gap_start < width:
                continue
            candidate = min(max(site, gap_start), gap_end - width)
            cost = abs(candidate - site)
            if cost < best_cost:
                best_cost, best = cost, candidate
        return best

    rng = random.Random(99)
    for _ in range(3000):
        spr = rng.randrange(5, 50)
        occupancy = _RowOccupancy()
        reserved = []
        for _ in range(rng.randrange(0, 7)):
            start = rng.randrange(0, spr)
            width = rng.randrange(1, 5)
            reserved.append((start, start + width))
            occupancy.reserve(start, start + width)
        site = rng.randrange(0, spr)
        width = rng.randrange(1, 5)
        assert occupancy.nearest_fit(site, width, spr) == reference_scan(
            reserved, site, width, spr
        )


# ----------------------------------------------------------------------
# End-to-end: the public entry points agree under both knob settings
# ----------------------------------------------------------------------
def test_build_locked_layout_identical_across_knob(monkeypatch):
    locked = _locked(
        generate_random_circuit(
            GeneratorConfig(10, 5, 120), seed=21, name="flow120"
        ),
        key_bits=10,
    )
    results = {}
    for engine in ("reference", "compiled"):
        monkeypatch.setenv("REPRO_LAYOUT_ENGINE", engine)
        layout = build_locked_layout(locked, split_layer=4, seed=2019)
        results[engine] = (layout, layout.feol_view())
    ref_layout, ref_view = results["reference"]
    cmp_layout, cmp_view = results["compiled"]
    assert ref_layout.placement.locations == cmp_layout.placement.locations
    assert all(
        ref_layout.routing.nets[n] == cmp_layout.routing.nets[n]
        for n in ref_layout.routing.nets
    )
    assert ref_view.source_stubs == cmp_view.source_stubs
    assert ref_view.sink_stubs == cmp_view.sink_stubs
    assert asdict(
        measure_layout_cost(
            ref_layout.circuit, ref_layout.floorplan, ref_layout.routing
        )
    ) == asdict(
        measure_layout_cost(
            cmp_layout.circuit, cmp_layout.floorplan, cmp_layout.routing
        )
    )


def test_layout_cost_study_pipeline_matches_standalone():
    """The Fig. 5 stage through the runner equals the inline path."""
    from repro.runner.spec import CellSpec
    from repro.runner.stages import layout_cost_runs
    from repro.phys import (
        build_locked_layout as bll,
        build_unprotected_layout,
        measure_layout_cost as mlc,
    )

    cell = CellSpec(
        benchmark="random:i10-o5-g120", key_bits=10, max_candidates=350
    )
    pipelined = layout_cost_runs(cell, cache=None, split_layers=(4,))

    core = generate_random_circuit(
        GeneratorConfig(10, 5, 120), seed=cell.seed, name=cell.benchmark
    ).combinational_core()
    locked, _ = atpg_lock(
        core,
        AtpgLockConfig(
            key_bits=10, seed=cell.seed, run_lec=False, max_candidates=350
        ),
    )
    base_layout = build_unprotected_layout(core, seed=cell.seed)
    base = mlc(core, base_layout.floorplan, base_layout.routing)
    prelift = bll(locked, seed=cell.seed, prelift=True)
    m4 = bll(locked, split_layer=4, seed=cell.seed)
    standalone = {
        "prelift": mlc(
            prelift.circuit, prelift.floorplan, prelift.routing
        ).delta_percent(base),
        "M4": mlc(m4.circuit, m4.floorplan, m4.routing).delta_percent(base),
    }
    assert pipelined == standalone
