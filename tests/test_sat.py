"""SAT substrate tests: CNF, Tseitin encoding, CDCL solver, LEC."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.gate_types import GateType
from repro.sat.cnf import Cnf
from repro.sat.lec import build_miter, check_equivalence
from repro.sat.solver import CdclSolver, solve_cnf
from repro.sat.tseitin import encode_circuit
from repro.sim.bitparallel import simulate_words
from tests.conftest import build_random_circuit, tiny_mux_circuit


def brute_force_sat(cnf: Cnf) -> bool:
    for bits in itertools.product([False, True], repeat=cnf.num_vars):
        if cnf.evaluate({i + 1: bits[i] for i in range(cnf.num_vars)}):
            return True
    return False


def random_cnf(seed: int) -> Cnf:
    rng = random.Random(seed)
    n = rng.randint(3, 9)
    cnf = Cnf(num_vars=n)
    for _ in range(rng.randint(4, 40)):
        width = rng.randint(1, 3)
        variables = rng.sample(range(1, n + 1), min(width, n))
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in variables])
    return cnf


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 100_000))
def test_solver_matches_brute_force(seed):
    """Property: CDCL verdict equals brute force on random 3-SAT."""
    cnf = random_cnf(seed)
    result = solve_cnf(cnf)
    assert result.sat == brute_force_sat(cnf)
    if result.sat:
        assert cnf.evaluate(result.model)


def test_solver_unit_and_pure():
    cnf = Cnf(num_vars=2)
    cnf.add_clause((1,))
    cnf.add_clause((-1, 2))
    result = solve_cnf(cnf)
    assert result.sat
    assert result.model[1] and result.model[2]


def test_solver_trivial_unsat():
    cnf = Cnf(num_vars=1)
    cnf.add_clause((1,))
    cnf.add_clause((-1,))
    assert solve_cnf(cnf).unsat


def test_solver_tautology_and_duplicates():
    solver = CdclSolver(2)
    solver.add_clause([1, -1])  # tautology: dropped
    solver.add_clause([2, 2])  # duplicate literal: deduplicated
    result = solver.solve()
    assert result.sat
    assert result.model[2]


def test_solver_assumptions():
    cnf = Cnf(num_vars=3)
    cnf.add_clause((1, 2))
    cnf.add_clause((-1, 3))
    assert solve_cnf(cnf, assumptions=[-2]).sat
    assert solve_cnf(cnf, assumptions=[-1, -2]).unsat
    # assumptions must not leak into later solves of a fresh solver
    assert solve_cnf(cnf, assumptions=[2]).sat


def test_solver_conflict_limit_returns_unknown():
    rng = random.Random(99)
    cnf = Cnf(num_vars=30)
    for _ in range(140):
        variables = rng.sample(range(1, 31), 3)
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in variables])
    result = solve_cnf(cnf, conflict_limit=1)
    assert result.status in ("sat", "unsat", "unknown")


def test_cnf_dimacs_roundtrip():
    cnf = Cnf(num_vars=3)
    cnf.add_clause((1, -2))
    cnf.add_clause((3,))
    text = cnf.to_dimacs()
    again = Cnf.from_dimacs(text)
    assert again.num_vars == 3
    assert again.clauses == [(1, -2), (3,)]


def test_cnf_rejects_bad_literals():
    cnf = Cnf(num_vars=2)
    with pytest.raises(ValueError):
        cnf.add_clause((0,))
    with pytest.raises(ValueError):
        cnf.add_clause((5,))
    with pytest.raises(ValueError):
        cnf.add_clause(())


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 300))
def test_tseitin_encoding_is_assignment_faithful(seed):
    """Property: SAT models of the encoding are simulation traces."""
    circuit = build_random_circuit(seed, num_inputs=5, num_gates=20)
    encoding = encode_circuit(circuit)
    result = solve_cnf(encoding.cnf)
    assert result.sat  # a circuit CNF alone is always satisfiable
    model = result.model
    stimulus = {n: int(model[encoding.var_of[n]]) for n in circuit.inputs}
    values = simulate_words(circuit, stimulus, 1)
    for net, var in encoding.var_of.items():
        assert (values[net] & 1) == int(model[var]), net


def test_tseitin_fixed_output_matches_simulation(c17_circuit):
    encoding = encode_circuit(c17_circuit)
    # force both outputs to 1 and check a witness by simulation
    cnf = encoding.cnf
    cnf.add_unit(encoding.literal("N22", 1))
    cnf.add_unit(encoding.literal("N23", 1))
    result = solve_cnf(cnf)
    assert result.sat
    stimulus = {n: int(result.model[encoding.var_of[n]]) for n in c17_circuit.inputs}
    words, _ = {k: v for k, v in stimulus.items()}, 1
    values = simulate_words(c17_circuit, stimulus, 1)
    assert values["N22"] & 1 == 1 and values["N23"] & 1 == 1


def test_build_miter_requires_matching_interfaces(c17_circuit):
    other = tiny_mux_circuit()
    with pytest.raises(ValueError):
        build_miter(c17_circuit, other)


def test_lec_equivalent_self(c17_circuit):
    result = check_equivalence(c17_circuit, c17_circuit.copy())
    assert result.equivalent is True


def test_lec_detects_inequivalence(c17_circuit):
    mutated = c17_circuit.copy("mut")
    mutated.replace_gate(mutated.gates["N16"].with_type(GateType.NOR))
    result = check_equivalence(c17_circuit, mutated)
    assert result.equivalent is False
    assert result.counterexample is not None
    # counterexample must actually distinguish the two circuits
    words = {n: v for n, v in result.counterexample.items()}
    a = simulate_words(c17_circuit, words, 1)
    b = simulate_words(mutated, words, 1)
    assert any(a[o] != b[o] for o in c17_circuit.outputs)


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 100))
def test_lec_on_random_circuits(seed):
    """Property: LEC proves a circuit equivalent to a re-serialised copy
    and distinguishes a single-gate mutation (when one is functional)."""
    circuit = build_random_circuit(seed, num_inputs=6, num_gates=25)
    assert check_equivalence(circuit, circuit.copy()).equivalent is True


def test_lec_sequential_uses_core(sequential_circuit):
    result = check_equivalence(sequential_circuit, sequential_circuit.copy())
    assert result.equivalent is True


def test_lec_simulation_shortcut(c17_circuit):
    mutated = c17_circuit.copy("mut")
    mutated.replace_gate(mutated.gates["N22"].with_type(GateType.AND))
    result = check_equivalence(c17_circuit, mutated)
    assert result.equivalent is False
    assert result.method == "simulation"


def test_extend_with_aux_completes_trace_to_model():
    """A simulation trace + replayed XOR links satisfies the full CNF."""
    for seed in range(12):
        circuit = build_random_circuit(seed, num_inputs=5, num_gates=24)
        encoding = encode_circuit(circuit)
        stimulus = {n: (seed >> i) & 1 for i, n in enumerate(circuit.inputs)}
        values = simulate_words(circuit, stimulus, 1)
        assignment = {
            var: bool(values[net] & 1) for net, var in encoding.var_of.items()
        }
        encoding.extend_with_aux(assignment)
        assert len(assignment) == encoding.cnf.num_vars
        assert encoding.cnf.evaluate(assignment)


def test_lec_sat_counterexample_is_confirmed(c17_circuit):
    from repro.sat.lec import _prove_equivalence

    mutated = c17_circuit.copy("mut")
    mutated.replace_gate(mutated.gates["N16"].with_type(GateType.NOR))
    # Drive the SAT phase directly so the counterexample comes from a
    # solver model rather than the simulation shortcut.
    result = _prove_equivalence(c17_circuit, mutated, None)
    assert result.equivalent is False and result.method == "sat"
    assert result.counterexample_confirmed is True
    # Simulation-phase counterexamples are confirmed by construction.
    shortcut = check_equivalence(c17_circuit, mutated)
    assert shortcut.counterexample_confirmed is True
    # No counterexample -> nothing to confirm.
    proven = check_equivalence(c17_circuit, c17_circuit.copy())
    assert proven.counterexample_confirmed is None


def test_sat_futility_witness_matches_cdcl():
    """The batched witness probe is a drop-in for per-key CDCL solves."""
    from repro.attacks.sat_attack import demonstrate_sat_futility
    from repro.benchgen import GeneratorConfig, generate_random_circuit
    from repro.locking.atpg_lock import AtpgLockConfig, atpg_lock

    circuit = generate_random_circuit(
        GeneratorConfig(num_inputs=8, num_outputs=4, num_gates=60),
        seed=3,
        name="futility",
    ).combinational_core()
    locked, _report = atpg_lock(
        circuit, AtpgLockConfig(key_bits=8, seed=3, run_lec=False)
    )
    witness = demonstrate_sat_futility(locked, sample_keys=12, seed=7)
    cdcl = demonstrate_sat_futility(
        locked, sample_keys=12, seed=7, method="cdcl"
    )
    assert witness == cdcl
    assert witness.all_keys_consistent
    with pytest.raises(ValueError):
        demonstrate_sat_futility(locked, method="bogus")
