"""Benchmark generator tests: profiles, determinism, structural health."""

import pytest

from repro.benchgen import (
    ISCAS85_PROFILES,
    ITC99_PROFILES,
    TABLE_I_BENCHMARKS,
    TABLE_III_BENCHMARKS,
    GeneratorConfig,
    c17,
    generate_random_circuit,
    load_iscas85,
    load_itc99,
    profile,
)
from repro.netlist.validate import validate
from repro.sim.bitparallel import functions_equal_exhaustive


def test_c17_is_exact():
    circuit = c17()
    assert circuit.num_logic_gates() == 6
    assert all(g.gate_type.value == "nand" for g in circuit if not g.is_input)


def test_profiles_lookup():
    assert profile("c432").num_inputs == 36
    assert profile("b17").num_dffs == 1415
    with pytest.raises(KeyError):
        profile("c9999")


def test_table_lists_cover_paper():
    assert set(TABLE_I_BENCHMARKS) == {"b14", "b15", "b17", "b20", "b21", "b22"}
    assert len(TABLE_III_BENCHMARKS) == 7


def test_iscas_interfaces_match_profiles():
    for name in ("c432", "c880", "c1355"):
        circuit = load_iscas85(name)
        prof = ISCAS85_PROFILES[name]
        assert len(circuit.inputs) == prof.num_inputs
        assert len(circuit.outputs) == prof.num_outputs
        # gate count within 25% of the published count (generation slack)
        assert abs(circuit.num_logic_gates() - prof.gates) / prof.gates < 0.25


def test_itc99_interfaces_match_profiles():
    for name in ("b14", "b15"):
        circuit = load_itc99(name)
        prof = ITC99_PROFILES[name]
        assert len(circuit.inputs) == prof.num_inputs
        assert len(circuit.outputs) == prof.num_outputs
        assert len(circuit.dffs) == prof.scaled_dffs()


def test_itc99_relative_size_order_preserved():
    sizes = {
        name: load_itc99(name).num_logic_gates()
        for name in ("b14", "b15", "b17", "b22")
    }
    assert sizes["b17"] > sizes["b22"] > sizes["b14"]
    assert sizes["b17"] > sizes["b15"]


def test_generation_is_deterministic():
    a = load_iscas85("c880", seed=5)
    b = load_iscas85("c880", seed=5)
    assert functions_equal_exhaustive is not None  # import guard
    assert list(a.gates) == list(b.gates)
    assert all(a.gates[n] == b.gates[n] for n in a.gates)


def test_different_seeds_differ():
    a = load_iscas85("c880", seed=5)
    b = load_iscas85("c880", seed=6)
    assert any(a.gates[n] != b.gates.get(n) for n in a.gates)


def test_generated_circuits_validate():
    for name in ("c432", "c1908"):
        report = validate(load_iscas85(name))
        assert report.ok, report.errors[:3]
    for name in ("b14", "b15"):
        report = validate(load_itc99(name))
        assert report.ok, report.errors[:3]


def test_scale_parameter():
    small = load_itc99("b14", scale=0.04)
    default = load_itc99("b14")
    assert small.num_logic_gates() < default.num_logic_gates()


def test_pockets_can_be_disabled():
    config = GeneratorConfig(
        num_inputs=10, num_outputs=4, num_gates=120, pocket_fraction=0.0
    )
    circuit = generate_random_circuit(config, seed=1, name="nopocket")
    assert not any("_p1_" in n for n in circuit.gates)


def test_pockets_present_by_default():
    config = GeneratorConfig(num_inputs=10, num_outputs=4, num_gates=300)
    circuit = generate_random_circuit(config, seed=1, name="pockets")
    roots = [n for n in circuit.gates if n.endswith("_root")]
    assert roots, "expected redundancy pockets in the default profile"
    assert validate(circuit).ok


def test_unknown_benchmarks_rejected():
    with pytest.raises(KeyError):
        load_iscas85("c000")
    with pytest.raises(KeyError):
        load_itc99("b99")


def test_combinational_core_of_each_itc99_is_healthy():
    core = load_itc99("b15").combinational_core()
    report = validate(core)
    assert report.ok
    assert len(core.inputs) == len(load_itc99("b15").inputs) + len(
        load_itc99("b15").dffs
    )
