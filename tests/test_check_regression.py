"""Benchmark regression gate: tolerance bands, baselines, update mode."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from check_regression import (  # noqa: E402
    GATES,
    RATIO_TOLERANCE,
    check_payload,
    main,
)


def _sim_payload(speedup: float = 6.0, pps: float = 1e6) -> dict:
    return {
        "largest_iscas85": {"speedup": speedup},
        "results": [
            {"speedup": speedup, "compiled_pps": pps},
            {"speedup": speedup + 1.0, "compiled_pps": pps / 2},
        ],
    }


def _attacks_payload(
    cache_speedup: float = 100.0, cold: float = 2.0, cached: float = 0.02
) -> dict:
    return {
        "cache_speedup": cache_speedup,
        "cold_wall_seconds": cold,
        "cached_wall_seconds": cached,
    }


def test_identical_payload_passes():
    payload = _sim_payload()
    assert check_payload("BENCH_sim", payload, payload) == []


def test_improvement_never_fails():
    assert (
        check_payload("BENCH_sim", _sim_payload(speedup=60.0), _sim_payload())
        == []
    )
    assert (
        check_payload(
            "BENCH_attacks",
            _attacks_payload(cache_speedup=500.0, cold=0.5),
            _attacks_payload(),
        )
        == []
    )


def test_ratio_regression_beyond_tolerance_fails():
    baseline = _sim_payload(speedup=6.0)
    barely_ok = _sim_payload(speedup=6.0 * (1 - RATIO_TOLERANCE) + 0.01)
    assert check_payload("BENCH_sim", barely_ok, baseline) == []
    collapsed = _sim_payload(speedup=6.0 * (1 - RATIO_TOLERANCE) - 0.1)
    failures = check_payload("BENCH_sim", collapsed, baseline)
    assert failures and "speedup" in failures[0]


def test_wall_clock_grace_spares_millisecond_baselines():
    # 20ms -> 900ms is a 45x blowup but inside the absolute grace band:
    # scheduler noise on a cache-served rerun must not trip the gate.
    baseline = _attacks_payload(cached=0.02)
    noisy = _attacks_payload(cached=0.9)
    assert check_payload("BENCH_attacks", noisy, baseline) == []
    # a genuine collapse (cache not serving at all) still trips
    broken = _attacks_payload(cached=30.0, cache_speedup=1.1)
    failures = check_payload("BENCH_attacks", broken, baseline)
    assert any("cached_wall_seconds" in f for f in failures)
    assert any("cache_speedup" in f for f in failures)


def test_every_committed_baseline_has_a_gate_and_parses():
    baseline_dir = Path(__file__).resolve().parent.parent / (
        "benchmarks/baselines"
    )
    committed = sorted(baseline_dir.glob("BENCH_*.json"))
    assert {p.stem for p in committed} == set(GATES)
    for path in committed:
        payload = json.loads(path.read_text())
        # every gated metric must be extractable from its own baseline
        for metric in GATES[path.stem]:
            assert metric.extract(payload) > 0


def test_main_checks_and_updates(tmp_path, capsys):
    current = tmp_path / "BENCH_sim.json"
    current.write_text(json.dumps(_sim_payload(speedup=6.0)))
    baselines = tmp_path / "baselines"

    # no baseline yet: the gate fails and says how to create one
    assert main([str(current), "--baseline-dir", str(baselines)]) == 1
    assert "missing baseline" in capsys.readouterr().err

    assert (
        main([str(current), "--baseline-dir", str(baselines), "--update"])
        == 0
    )
    assert main([str(current), "--baseline-dir", str(baselines)]) == 0

    current.write_text(json.dumps(_sim_payload(speedup=0.5)))
    assert main([str(current), "--baseline-dir", str(baselines)]) == 1


def test_main_rejects_unknown_payloads(tmp_path):
    rogue = tmp_path / "BENCH_rogue.json"
    rogue.write_text("{}")
    assert main([str(rogue)]) == 1


@pytest.mark.parametrize("stem", sorted(GATES))
def test_gate_metrics_are_well_formed(stem):
    for metric in GATES[stem]:
        assert metric.direction in ("higher", "lower")
        assert 0 < metric.tolerance < 1
