"""Adversary scenario engine: specs, engines, matchers, evaluation."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.adversary import (
    FEATURE_NAMES,
    SCENARIOS,
    MinCostFlow,
    Scenario,
    TrainConfig,
    build_candidates,
    engine_names,
    get_engine,
    implied_key_guess,
    key_accuracy,
    oracle_key_search,
    parse_scenario,
    run_scenario,
    train_scorer,
)
from repro.adversary.engine import AttackContext
from repro.adversary.netflow import flow_assignment
from repro.locking import AtpgLockConfig, atpg_lock
from repro.metrics import compute_ccr
from repro.phys import build_locked_layout
from tests.conftest import build_random_circuit


@pytest.fixture(scope="module")
def attacked_design():
    circuit = build_random_circuit(40, num_inputs=12, num_gates=200, num_outputs=8)
    locked, _ = atpg_lock(
        circuit, AtpgLockConfig(key_bits=16, seed=5, run_lec=False)
    )
    layout = build_locked_layout(locked, split_layer=4, seed=2)
    view = layout.feol_view()
    return circuit, locked, layout, view


#: Small, fast training config shared by the learned-scorer tests.
TINY_TRAIN = TrainConfig(
    profiles=((8, 4, 50), (10, 5, 70)), key_bits=6, epochs=60
)


# ----------------------------------------------------------------------
# Scenario specs
# ----------------------------------------------------------------------
def test_scenario_registry_names_are_consistent():
    for name, scenario in SCENARIOS.items():
        assert scenario.name == name
        assert scenario.engine in engine_names()


def test_scenario_rejects_unknown_fields():
    with pytest.raises(ValueError):
        Scenario("x", knowledge="telepathy")
    with pytest.raises(ValueError):
        Scenario("x", objective="world-domination")
    with pytest.raises(KeyError):
        parse_scenario("not-a-scenario")


def test_scenario_resolve_pins_seed_and_budget(monkeypatch):
    monkeypatch.delenv("REPRO_ATTACK_SEED", raising=False)
    monkeypatch.delenv("REPRO_ATTACK_BUDGET", raising=False)
    resolved = SCENARIOS["netflow"].resolve()
    assert resolved.seed is not None and resolved.budget is not None
    monkeypatch.setenv("REPRO_ATTACK_SEED", "7")
    monkeypatch.setenv("REPRO_ATTACK_BUDGET", "33")
    resolved = SCENARIOS["netflow"].resolve()
    assert resolved.seed == 7 and resolved.budget == 33
    # explicit scenario values win over the environment
    pinned = Scenario("x", seed=1, budget=2).resolve()
    assert pinned.seed == 1 and pinned.budget == 2


def test_scenario_payload_round_trip():
    scenario = SCENARIOS["oracle-key"].resolve()
    assert Scenario.from_payload(scenario.to_payload()) == scenario


# ----------------------------------------------------------------------
# Candidate features
# ----------------------------------------------------------------------
def test_candidates_cover_every_sink(attacked_design):
    _, _, _, view = attacked_design
    candidates = build_candidates(view, per_sink=8)
    assert len(candidates.per_sink) == len(view.sink_stubs)
    assert all(chosen for chosen in candidates.per_sink)
    assert candidates.features.shape == (
        candidates.num_pairs,
        len(FEATURE_NAMES),
    )


def test_key_pins_always_see_every_tie(attacked_design):
    _, _, _, view = attacked_design
    candidates = build_candidates(view, per_sink=2)
    tie_nets = {s.net for s in view.source_stubs if s.is_tie}
    for sink_index, sink in enumerate(candidates.sinks):
        if sink.has_escape:
            continue
        nets = {
            candidates.source_net(i) for i in candidates.per_sink[sink_index]
        }
        assert tie_nets <= nets


def test_labels_mark_true_pairs(attacked_design):
    _, _, _, view = attacked_design
    candidates = build_candidates(view, per_sink=16, with_labels=True)
    assert candidates.labels is not None
    rows = np.flatnonzero(candidates.labels)
    for row in rows[:50]:
        sink = candidates.sinks[int(candidates.pairs[row, 0])]
        assert candidates.source_net(int(candidates.pairs[row, 1])) == sink.net


# ----------------------------------------------------------------------
# Min-cost flow matcher
# ----------------------------------------------------------------------
def test_min_cost_flow_beats_greedy_on_crossing():
    # Greedy commits X-A (cost 1) then eats Y-B (cost 10) = 11;
    # the optimal matching X-B + Y-A costs 3.5.
    flow = MinCostFlow(6)  # S, X, Y, A, B, T
    s, x, y, a, b, t = range(6)
    flow.add_edge(s, x, 1, 0)
    flow.add_edge(s, y, 1, 0)
    arcs = {
        ("X", "A"): flow.add_edge(x, a, 1, 10),
        ("X", "B"): flow.add_edge(x, b, 1, 20),
        ("Y", "A"): flow.add_edge(y, a, 1, 15),
        ("Y", "B"): flow.add_edge(y, b, 1, 100),
    }
    flow.add_edge(a, t, 1, 0)
    flow.add_edge(b, t, 1, 0)
    pushed, cost = flow.solve(s, t, 2)
    assert pushed == 2
    assert cost == 35
    assert flow.cap[arcs[("X", "B")]] == 0  # saturated = chosen
    assert flow.cap[arcs[("Y", "A")]] == 0


def test_min_cost_flow_respects_capacity():
    flow = MinCostFlow(5)  # S, X, A, B, T
    s, x, a, b, t = range(5)
    flow.add_edge(s, x, 1, 0)  # driver load capacity 1
    flow.add_edge(x, a, 1, 1)
    flow.add_edge(x, b, 1, 1)
    flow.add_edge(a, t, 1, 0)
    flow.add_edge(b, t, 1, 0)
    pushed, _ = flow.solve(s, t, 2)
    assert pushed == 1  # capacity bounds the matching


def test_flow_assignment_is_deterministic(attacked_design):
    _, _, _, view = attacked_design
    candidates = build_candidates(view, per_sink=8)
    costs = candidates.features[:, 0]
    first, diag_a = flow_assignment(view, candidates, costs, load_limit=5)
    second, diag_b = flow_assignment(view, candidates, costs, load_limit=5)
    assert first == second
    assert diag_a == diag_b


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------
def _context(view, locked, scenario_name, **overrides):
    scenario = SCENARIOS[scenario_name].resolve()
    return AttackContext(
        view=view,
        scenario=scenario,
        seed=scenario.seed,
        budget=scenario.budget,
        locked=locked,
        **overrides,
    )


def test_engine_registry_rejects_unknown():
    with pytest.raises(KeyError):
        get_engine("quantum")


def test_netflow_engine_assigns_every_sink(attacked_design):
    _, locked, _, view = attacked_design
    result = get_engine("netflow").run(_context(view, locked, "netflow"))
    assert set(result.assignment) == {s.stub_id for s in view.sink_stubs}
    assert result.engine == "netflow"
    result.recovered.topological_order()  # acyclic


def test_netflow_beats_random_on_regular_nets(attacked_design):
    _, locked, _, view = attacked_design
    netflow = get_engine("netflow").run(_context(view, locked, "netflow"))
    random_result = get_engine("random").run(_context(view, locked, "random"))
    assert (
        compute_ccr(netflow).regular_ccr
        > compute_ccr(random_result).regular_ccr
    )


def test_learned_scorer_trains_deterministically():
    first = train_scorer(TINY_TRAIN)
    second = train_scorer(TINY_TRAIN)
    assert np.array_equal(first.weights, second.weights)
    assert first.bias == second.bias
    assert first.meta["train_pairs"] > 0
    assert 0.5 < first.meta["train_auc"] <= 1.0


def test_learned_scorer_ranks_true_pairs_higher(attacked_design):
    _, _, _, view = attacked_design
    scorer = train_scorer(TINY_TRAIN)
    candidates = build_candidates(view, per_sink=16, with_labels=True)
    probs = scorer.probabilities(candidates.features)
    true_mean = probs[candidates.labels > 0.5].mean()
    false_mean = probs[candidates.labels < 0.5].mean()
    assert true_mean > false_mean


def test_sat_engine_reports_futility(attacked_design):
    _, locked, _, view = attacked_design
    result = get_engine("sat").run(_context(view, locked, "sat"))
    futility = result.diagnostics["sat_futility"]
    assert futility["keys_probed"] == futility["keys_consistent"]
    assert len(result.key_guess) == locked.key_length


# ----------------------------------------------------------------------
# Scenario evaluation
# ----------------------------------------------------------------------
def test_run_scenario_requires_resolved():
    with pytest.raises(ValueError):
        run_scenario(
            SCENARIOS["netflow"],  # unresolved: seed/budget are None
            None, None, None, "x", 4, hd_patterns=64,
        )


def test_run_scenario_outcome_is_picklable(attacked_design):
    circuit, locked, _, view = attacked_design
    outcome = run_scenario(
        SCENARIOS["netflow"].resolve(),
        view, locked, circuit, "t200", 4, hd_patterns=512,
    )
    clone = pickle.loads(pickle.dumps(outcome))
    assert clone.ccr == outcome.ccr
    assert clone.hd_oer == outcome.hd_oer
    assert clone.scenario == outcome.scenario


def test_oracle_scenario_batches_hypotheses(attacked_design):
    circuit, locked, _, view = attacked_design
    outcome = run_scenario(
        SCENARIOS["oracle-key"].resolve(),
        view, locked, circuit, "t200", 4, hd_patterns=512,
    )
    assert outcome.sim_engine == "compiled-batch"
    assert outcome.hypotheses > 1
    assert outcome.key_guess is not None
    assert 0.0 <= outcome.key_accuracy <= 1.0


def test_oracle_key_search_finds_true_key_in_small_keyspace():
    circuit = build_random_circuit(7, num_inputs=8, num_gates=80, num_outputs=4)
    locked, _ = atpg_lock(
        circuit, AtpgLockConfig(key_bits=4, seed=3, run_lec=False)
    )
    # Budget covers the whole 16-key space: the true key (or an exact
    # functional equivalent) must score zero mismatches.
    guess, diagnostics = oracle_key_search(
        locked, circuit, budget=16, seed=11
    )
    assert diagnostics["hypotheses"] == 16
    assert diagnostics["best_mismatch_bits"] == 0
    assert key_accuracy(guess, locked) == 1.0 or _equivalent_key(
        locked, guess
    )


def _equivalent_key(locked, guess):
    from repro.sim.bitparallel import functions_equal_exhaustive

    return functions_equal_exhaustive(
        locked.with_key(list(guess), name="g"), locked.circuit.copy("r")
    )


def test_implied_key_guess_reads_tie_polarities(attacked_design):
    circuit, locked, _, view = attacked_design
    outcome_result = get_engine("ideal").run(
        _context(view, locked, "ideal")
    )
    guess = implied_key_guess(outcome_result, locked)
    assert len(guess) == locked.key_length
    assert set(guess) <= {0, 1}
    # the perfect assignment implies the true key exactly
    from repro.attacks.result import AttackResult

    perfect = AttackResult(
        view, {s.stub_id: s.net for s in view.sink_stubs}, strategy="oracle"
    )
    assert implied_key_guess(perfect, locked) == locked.key
    assert key_accuracy(implied_key_guess(perfect, locked), locked) == 1.0
