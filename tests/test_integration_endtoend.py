"""Full-pipeline integration tests: the paper's claims on a small design.

These run the complete flow — generation, locking with LEC, physical
design, splitting, attacks, metrics — and assert the paper's *findings*
rather than individual module behaviour.  They are the repository's
regression net for the headline results.
"""

import pytest

#: The full flow with LEC is the heaviest module in the suite; CI
#: deselects it (``-m "not slow"``) and relies on the campaign smoke
#: cell plus the tier-1 units instead.  Run locally with plain pytest.
pytestmark = pytest.mark.slow

from repro.attacks import (  # noqa: E402
    ideal_attack,
    proximity_attack,
    random_guess_attack,
    reconnect_key_gates_to_ties,
)
from repro.benchgen import GeneratorConfig, generate_random_circuit
from repro.locking import AtpgLockConfig, atpg_lock
from repro.metrics import compute_ccr, compute_hd_oer
from repro.phys import build_locked_layout
from repro.sat.lec import check_equivalence


@pytest.fixture(scope="module")
def pipeline():
    """One mid-size sequential design through the whole flow."""
    circuit = generate_random_circuit(
        GeneratorConfig(num_inputs=14, num_outputs=10, num_gates=300, num_dffs=8),
        seed=77,
        name="e2e",
    )
    core = circuit.combinational_core()
    locked, report = atpg_lock(
        core, AtpgLockConfig(key_bits=24, seed=11, run_lec=True)
    )
    layouts = {
        split: build_locked_layout(locked, split_layer=split, seed=3)
        for split in (4, 6)
    }
    return core, locked, report, layouts


def test_lock_is_lec_verified(pipeline):
    _, _, report, _ = pipeline
    assert report.lec_equivalent is True


def test_correct_key_unlocks(pipeline):
    core, locked, _, _ = pipeline
    lec = check_equivalence(core, locked.with_key(list(locked.key)))
    assert lec.equivalent is True


def test_wrong_keys_stay_locked(pipeline):
    """Most single-bit flips, and certainly the full flip, must break
    the function.

    A single comparator bit can occasionally be masked when the cubes it
    separates lie in *unreachable* cut-space (correlated internal nets) —
    this is exactly the epsilon slack Theorem 1 allows in
    ``P_kb <= 1/2 + eps``; it cannot be exploited without an oracle.
    """
    core, locked, _, _ = pipeline
    broken = 0
    sampled = min(6, locked.key_length)
    for flip in range(sampled):
        guess = list(locked.key)
        guess[flip] ^= 1
        lec = check_equivalence(core, locked.with_key(guess))
        if lec.equivalent is False:
            broken += 1
    assert broken >= sampled // 2, f"only {broken}/{sampled} flips matter"
    all_wrong = [1 - b for b in locked.key]
    assert check_equivalence(core, locked.with_key(all_wrong)).equivalent is False


def test_attack_cannot_recover_key_at_either_split(pipeline):
    core, locked, _, layouts = pipeline
    for split, layout in layouts.items():
        view = layout.feol_view()
        result = reconnect_key_gates_to_ties(proximity_attack(view))
        ccr = compute_ccr(result)
        assert 25.0 <= ccr.key_logical_ccr <= 75.0, (split, ccr)
        assert ccr.key_physical_ccr <= 25.0, (split, ccr)


def test_recovered_netlists_are_erroneous(pipeline):
    core, _, _, layouts = pipeline
    for split, layout in layouts.items():
        view = layout.feol_view()
        result = reconnect_key_gates_to_ties(proximity_attack(view))
        report = compute_hd_oer(core, result.recovered, patterns=4096)
        assert report.oer_percent > 95.0, split
        assert report.hd_percent > 5.0, split


def test_attack_hierarchy(pipeline):
    """ideal >= proximity >= random on regular nets (sanity ordering)."""
    core, _, _, layouts = pipeline
    view = layouts[4].feol_view()
    prox = compute_ccr(proximity_attack(view)).regular_ccr
    ideal = compute_ccr(ideal_attack(view, seed=1)).regular_ccr
    rand = compute_ccr(random_guess_attack(view, seed=1)).regular_ccr
    assert ideal >= prox >= rand


def test_key_uniformity(pipeline):
    """The key must mix polarities (the paper's K <-$- {0,1}^k)."""
    _, locked, _, _ = pipeline
    ones = sum(locked.key)
    assert 0 < ones < locked.key_length


def test_tie_cells_scattered(pipeline):
    """Randomized TIE placement: TIEs must not hug their key-gates."""
    import math

    _, locked, _, layouts = pipeline
    layout = layouts[4]
    distances = []
    for bit in locked.key_bits:
        tx, ty = layout.placement.pin_location(bit.tie_cell)
        gx, gy = layout.placement.pin_location(bit.key_gate)
        distances.append(math.hypot(tx - gx, ty - gy))
    die = math.hypot(layout.floorplan.width_um, layout.floorplan.height_um)
    # average TIE-to-key-gate distance is a sizeable fraction of the die
    assert sum(distances) / len(distances) > 0.15 * die


def test_prelift_keeps_ties_near_key_gates(pipeline):
    """The naive flow does the opposite: attraction pulls TIEs close."""
    import math

    _, locked, _, layouts = pipeline
    secure = layouts[4]
    prelift = build_locked_layout(locked, seed=3, prelift=True)

    def mean_distance(layout):
        values = []
        for bit in locked.key_bits:
            tx, ty = layout.placement.pin_location(bit.tie_cell)
            gx, gy = layout.placement.pin_location(bit.key_gate)
            values.append(math.hypot(tx - gx, ty - gy))
        return sum(values) / len(values)

    assert mean_distance(prelift) < mean_distance(secure)
