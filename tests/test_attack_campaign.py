"""Attack-scenario campaigns: expansion, parity, caching, CLI."""

from __future__ import annotations

import pytest

from repro.adversary.scenario import DEFAULT_ATTACK_BUDGET
from repro.runner import (
    AttackCampaignSpec,
    AttackCellSpec,
    CellSpec,
    cell_attack,
    run_attack_campaign,
)
from repro.runner.cli import main as cli_main
from repro.runner.spec import parse_scenario
from repro.runner.stages import attack_payload
from repro.utils.artifact_cache import ArtifactCache, spec_key

#: Tiny threat-model grid: one benchmark, three engines, seconds of
#: runtime (the learned engine trains once per process and memoises).
TINY = AttackCampaignSpec(
    benchmarks=("random:i10-o5-g90",),
    scenarios=("netflow", "proximity", "random"),
    split_layers=(4,),
    key_bits=(10,),
    hd_patterns=512,
    max_candidates=60,
)


@pytest.fixture(scope="module")
def serial_result():
    return run_attack_campaign(TINY, workers=1, use_cache=False)


def test_attack_spec_expands_scenario_grid():
    cells = TINY.cells()
    assert len(cells) == 3
    assert [c.cell_id for c in cells] == [
        "random:i10-o5-g90/M4/k10/netflow",
        "random:i10-o5-g90/M4/k10/proximity",
        "random:i10-o5-g90/M4/k10/random",
    ]
    for cell in cells:
        # scenarios are resolved at expansion time
        assert cell.scenario.seed is not None
        assert cell.scenario.budget == DEFAULT_ATTACK_BUDGET


def test_attack_spec_rejects_unknown_scenarios():
    with pytest.raises(KeyError):
        AttackCampaignSpec(benchmarks=("b14",), scenarios=("nope",))
    with pytest.raises(ValueError):
        AttackCampaignSpec(benchmarks=(), scenarios=("random",))


def test_attack_payload_round_trip():
    cell = TINY.cells()[0]
    assert AttackCellSpec.from_payload(cell.to_payload()) == cell
    assert AttackCampaignSpec.from_payload(TINY.to_payload()) == TINY


def test_parallel_matches_serial(serial_result):
    parallel = run_attack_campaign(TINY, workers=2, use_cache=False)
    serial_outcomes = serial_result.outcomes()
    parallel_outcomes = parallel.outcomes()
    assert serial_outcomes.keys() == parallel_outcomes.keys()
    for key, serial_outcome in serial_outcomes.items():
        other = parallel_outcomes[key]
        assert serial_outcome.ccr == other.ccr
        assert serial_outcome.pnr == other.pnr
        assert serial_outcome.hd_oer == other.hd_oer
        assert serial_outcome.diagnostics == other.diagnostics


def test_new_engines_beat_random_floor(serial_result):
    outcomes = serial_result.outcomes()
    floor = next(o for k, o in outcomes.items() if k[-1] == "random")
    for key, outcome in outcomes.items():
        if key[-1] == "random":
            continue
        assert outcome.ccr.regular_ccr > floor.ccr.regular_ccr, key


def test_cached_rerun_is_bit_identical(tmp_path, serial_result):
    cache_dir = tmp_path / "cache"
    cold = run_attack_campaign(TINY, workers=1, cache_dir=cache_dir)
    assert cold.cache_stats().misses > 0
    warm = run_attack_campaign(TINY, workers=1, cache_dir=cache_dir)
    stats = warm.cache_stats()
    # The fused path (the default) probes every stage cache, so total
    # hits exceed the cell count; the attack stage must hit per cell.
    assert stats.misses == 0
    assert stats.stages["attack"].hits == len(TINY.cells())
    for a, b in zip(cold.cells, warm.cells):
        assert a.outcome.ccr == b.outcome.ccr
        assert a.outcome.hd_oer == b.outcome.hd_oer
        assert a.outcome.diagnostics == b.outcome.diagnostics
    # and identical to the uncached computation
    for a, b in zip(serial_result.cells, warm.cells):
        assert a.outcome.ccr == b.outcome.ccr


def test_attack_cache_key_tracks_scenario_fields():
    base = TINY.cells()[0]
    key_base = spec_key(attack_payload(base))
    reseeded = AttackCellSpec(
        cell=base.cell,
        scenario=parse_scenario("netflow").resolve().__class__(
            **{**base.scenario.to_payload(), "seed": 999}
        ),
    )
    assert spec_key(attack_payload(reseeded)) != key_base
    other_cell = AttackCellSpec(
        cell=CellSpec(
            benchmark=base.cell.benchmark,
            split_layer=base.cell.split_layer,
            key_bits=base.cell.key_bits,
            seed=base.cell.seed + 1,
            scale=base.cell.scale,
            hd_patterns=base.cell.hd_patterns,
            max_candidates=base.cell.max_candidates,
        ),
        scenario=base.scenario,
    )
    assert spec_key(attack_payload(other_cell)) != key_base


def test_cell_attack_shares_lock_and_layout(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    first, second = TINY.cells()[0], TINY.cells()[1]
    cell_attack(first, cache)
    hits_before = cache.stats.hits
    cell_attack(second, cache)
    # The sibling scenario reuses the cached lock + layout artifacts.
    assert cache.stats.hits >= hits_before + 2


def test_cli_attacks_smoke_grid(tmp_path, capsys):
    code = cli_main(
        [
            "attacks",
            "--benchmarks", "random:i10-o5-g90",
            "--scenarios", "netflow,random",
            "--splits", "4",
            "--key-bits", "10",
            "--hd-patterns", "512",
            "--workers", "1",
            "--cache-dir", str(tmp_path / "cli-cache"),
            "--json", str(tmp_path / "out.json"),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "netflow" in out and "random" in out
    import json

    payload = json.loads((tmp_path / "out.json").read_text())
    assert len(payload) == 2
    assert {entry["cell"]["scenario"]["name"] for entry in payload} == {
        "netflow",
        "random",
    }


def test_grid_verdict_detects_floor_and_fallback(serial_result, monkeypatch):
    from repro.adversary import grid_verdict

    outcomes = serial_result.outcomes()
    ok, problems = grid_verdict(outcomes)
    assert ok, problems
    # a missing random floor is reported
    partial = {k: v for k, v in outcomes.items() if k[-1] != "random"}
    ok, problems = grid_verdict(partial)
    assert not ok and any("floor" in p for p in problems)
    # a forced big-int fallback is *measured*, not assumed away — and
    # the oracle scenario's compiled-batch key search must not mask the
    # HD/OER fallback of the same cell
    monkeypatch.setenv("REPRO_SIM_ENGINE", "bigint")
    fallen = run_attack_campaign(
        AttackCampaignSpec(
            benchmarks=TINY.benchmarks,
            scenarios=("netflow", "oracle-key"),
            split_layers=TINY.split_layers,
            key_bits=TINY.key_bits,
            hd_patterns=TINY.hd_patterns,
            max_candidates=TINY.max_candidates,
        ),
        workers=1,
        use_cache=False,
    )
    for key, outcome in fallen.outcomes().items():
        assert outcome.sim_engine == "bigint", key
    ok, problems = grid_verdict(
        {**outcomes, **fallen.outcomes()}
    )
    assert not ok and any("fell back" in p for p in problems)


def test_cli_attacks_requires_benchmarks():
    assert cli_main(["attacks"]) == 2


def test_cli_attacks_rejects_unknown_scenario():
    assert (
        cli_main(
            ["attacks", "--benchmarks", "b14", "--scenarios", "bogus"]
        )
        == 2
    )
