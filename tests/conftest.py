"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.benchgen import GeneratorConfig, c17, generate_random_circuit
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType


@pytest.fixture
def c17_circuit() -> Circuit:
    return c17()


@pytest.fixture
def small_random_circuit() -> Circuit:
    config = GeneratorConfig(
        num_inputs=8, num_outputs=4, num_gates=60, pocket_fraction=0.0
    )
    return generate_random_circuit(config, seed=11, name="t60")


@pytest.fixture
def mid_random_circuit() -> Circuit:
    config = GeneratorConfig(num_inputs=16, num_outputs=8, num_gates=240)
    return generate_random_circuit(config, seed=7, name="t240")


@pytest.fixture
def sequential_circuit() -> Circuit:
    config = GeneratorConfig(
        num_inputs=6, num_outputs=4, num_gates=80, num_dffs=5
    )
    return generate_random_circuit(config, seed=3, name="tseq")


def build_random_circuit(
    seed: int,
    num_inputs: int = 6,
    num_gates: int = 40,
    num_outputs: int = 3,
) -> Circuit:
    """Deterministic random circuit for hypothesis-driven tests."""
    config = GeneratorConfig(
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        num_gates=num_gates,
        pocket_fraction=0.0,
    )
    return generate_random_circuit(config, seed=seed, name=f"h{seed}")


#: Strategy: seeds for random-circuit generation.
circuit_seeds = st.integers(min_value=0, max_value=10_000)

#: Strategy: input patterns of a given width.
def patterns_for(width: int, max_count: int = 16):
    return st.lists(
        st.lists(st.integers(0, 1), min_size=width, max_size=width),
        min_size=1,
        max_size=max_count,
    )


def random_assignment(circuit: Circuit, seed: int) -> dict[str, int]:
    rng = random.Random(seed)
    return {net: rng.randrange(2) for net in circuit.inputs}


def tiny_mux_circuit() -> Circuit:
    """z = (a AND s) OR (b AND NOT s): a handy 2:1 mux for unit tests."""
    circuit = Circuit("mux")
    circuit.add_input("a")
    circuit.add_input("b")
    circuit.add_input("s")
    circuit.add("ns", GateType.NOT, ("s",))
    circuit.add("t0", GateType.AND, ("a", "s"))
    circuit.add("t1", GateType.AND, ("b", "ns"))
    circuit.add("z", GateType.OR, ("t0", "t1"))
    circuit.add_output("z")
    return circuit
