"""Locking tests: partitioning, restore circuitry, ATPG lock, random lock."""

import random

import pytest

from repro.atpg import StuckAtFault, enumerate_failing_patterns, internal_faults
from repro.locking import (
    AtpgLockConfig,
    LockedCircuit,
    atpg_lock,
    extract_fault_module,
    insert_restore,
    random_lock,
)
from repro.locking.cost_model import cascade_removed_area, restore_area_estimate
from repro.locking.partition import affected_sinks, extract_sink_modules, grow_cut
from repro.netlist.gate_types import GateType
from repro.sat.lec import check_equivalence
from repro.sim.bitparallel import output_words, random_words
from tests.conftest import build_random_circuit


def _hd(a, b, patterns=256, seed=0):
    rng = random.Random(seed)
    words = random_words(a.inputs, patterns, rng)
    oa = output_words(a, words, patterns)
    ob = output_words(b, words, patterns)
    bits = patterns * len(a.outputs)
    diff = sum((oa[x] ^ ob[y]).bit_count() for x, y in zip(a.outputs, b.outputs))
    return diff / bits


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
def test_affected_sinks_c17(c17_circuit):
    sinks, aliases = affected_sinks(c17_circuit, "N10")
    assert sinks == ["N22"]
    assert aliases["N22"] == ["PO:N22"]
    sinks, _ = affected_sinks(c17_circuit, "N11")
    assert set(sinks) == {"N22", "N23"}


def test_grow_cut_separates_and_contains(c17_circuit):
    cut = grow_cut(c17_circuit, ["N22"], "N10", max_support=5)
    assert cut is not None
    assert "N10" not in cut
    # the cut must not include fault-tainted nets
    tainted = c17_circuit.transitive_fanout(["N10"])
    assert not set(cut) & tainted


def test_extract_fault_module_contains_fault(c17_circuit):
    module = extract_fault_module(c17_circuit, "N11", max_support=5)
    assert module is not None
    assert "N11" in module.module.gates
    assert set(module.module.outputs) == {"N22", "N23"}


def test_extract_sink_modules_per_sink(c17_circuit):
    modules = extract_sink_modules(c17_circuit, "N11", max_support=5)
    assert modules is not None
    assert len(modules) == 2
    for module in modules:
        assert len(module.sink_nets) == 1
        assert "N11" in module.module.gates


def test_extract_sink_modules_respects_budget(c17_circuit):
    assert extract_sink_modules(c17_circuit, "N11", max_support=1) is None


def test_sequential_sinks_are_dff_pins(sequential_circuit):
    core_faults = internal_faults(sequential_circuit)
    fault = core_faults[0]
    sinks, aliases = affected_sinks(sequential_circuit, fault.net)
    assert sinks
    kinds = {a.split(":")[0] for alist in aliases.values() for a in alist}
    assert kinds <= {"PO", "DFF"}


# ----------------------------------------------------------------------
# Restore circuitry
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fault", [StuckAtFault("N10", 1), StuckAtFault("N19", 1), StuckAtFault("N16", 0)])
def test_inject_plus_restore_is_equivalent(c17_circuit, fault):
    work = c17_circuit.copy("w")
    modules = extract_sink_modules(work, fault.net, max_support=5)
    assert modules is not None
    rng = random.Random(4)
    key_index = 0
    patterns_list = [
        enumerate_failing_patterns(m.module, fault, max_inputs=5, max_minterms=32)
        for m in modules
    ]
    from repro.netlist.circuit import Gate

    tie = GateType.TIEHI if fault.value else GateType.TIELO
    work.replace_gate(Gate(fault.net, tie, ()))
    for module, patterns in zip(modules, patterns_list):
        if not any(patterns.minterms_by_output.values()):
            continue
        result = insert_restore(work, module, patterns, rng, key_index, "lk")
        key_index += len(result.key_bits)
    lec = check_equivalence(c17_circuit, work)
    assert lec.equivalent is True, lec.counterexample


def test_restore_key_bits_are_uniformlike():
    """Over many restore insertions, key bits should mix HI and LO."""
    circuit = build_random_circuit(5, num_inputs=8, num_gates=60)
    locked, report = atpg_lock(
        circuit, AtpgLockConfig(key_bits=24, seed=9, run_lec=False)
    )
    values = [bit.value for bit in locked.key_bits]
    assert 0 < sum(values) < len(values)  # both polarities present


# ----------------------------------------------------------------------
# ATPG lock end-to-end
# ----------------------------------------------------------------------
def test_atpg_lock_c17_small_key(c17_circuit):
    locked, report = atpg_lock(
        c17_circuit,
        AtpgLockConfig(key_bits=8, max_support=5, max_minterms=16, seed=1),
    )
    assert report.lec_equivalent is True
    assert locked.key_length == 8
    assert locked.verify_tie_polarity()
    assert len(locked.circuit.tie_cells) >= 8


def test_atpg_lock_exact_key_budget():
    circuit = build_random_circuit(8, num_inputs=10, num_gates=90)
    locked, report = atpg_lock(
        circuit, AtpgLockConfig(key_bits=20, seed=2, run_lec=True)
    )
    assert locked.key_length == 20
    assert report.atpg_key_bits + report.random_key_bits == 20
    assert report.lec_equivalent is True


def test_atpg_lock_wrong_key_corrupts():
    circuit = build_random_circuit(10, num_inputs=10, num_gates=90)
    locked, _ = atpg_lock(
        circuit, AtpgLockConfig(key_bits=16, seed=3, run_lec=False)
    )
    wrong = [1 - b for b in locked.key]
    hd = _hd(circuit, locked.with_key(wrong))
    assert hd > 0.01


def test_atpg_lock_correct_key_is_identity():
    circuit = build_random_circuit(12, num_inputs=10, num_gates=80)
    locked, _ = atpg_lock(
        circuit, AtpgLockConfig(key_bits=12, seed=4, run_lec=False)
    )
    assert _hd(circuit, locked.with_key(list(locked.key))) == 0.0


def test_atpg_lock_deterministic():
    circuit = build_random_circuit(14, num_inputs=9, num_gates=70)
    l1, _ = atpg_lock(circuit, AtpgLockConfig(key_bits=10, seed=5, run_lec=False))
    l2, _ = atpg_lock(circuit, AtpgLockConfig(key_bits=10, seed=5, run_lec=False))
    assert l1.key == l2.key
    assert list(l1.circuit.gates) == list(l2.circuit.gates)


def test_locked_circuit_model():
    circuit = build_random_circuit(16, num_inputs=8, num_gates=50)
    locked, _ = atpg_lock(
        circuit, AtpgLockConfig(key_bits=6, seed=6, run_lec=False)
    )
    assert isinstance(locked, LockedCircuit)
    assert len(locked.tie_cells) == 6
    assert len(locked.key_gates) == 6
    assert locked.protected_nets == set(locked.tie_cells) | set(locked.key_gates)
    with pytest.raises(ValueError):
        locked.with_key([0])


# ----------------------------------------------------------------------
# Random (EPIC) locking
# ----------------------------------------------------------------------
def test_random_lock_equivalent_under_correct_key():
    circuit = build_random_circuit(20, num_inputs=8, num_gates=60)
    locked = random_lock(circuit, key_bits=16, seed=7)
    assert locked.key_length == 16
    lec = check_equivalence(circuit, locked.circuit)
    assert lec.equivalent is True


def test_random_lock_wrong_key_flips_outputs():
    circuit = build_random_circuit(21, num_inputs=8, num_gates=60)
    locked = random_lock(circuit, key_bits=16, seed=8)
    wrong = [1 - b for b in locked.key]
    assert _hd(circuit, locked.with_key(wrong)) > 0.05


def test_random_lock_single_bit_flip_changes_function():
    circuit = build_random_circuit(22, num_inputs=8, num_gates=60)
    locked = random_lock(circuit, key_bits=8, seed=9)
    guess = list(locked.key)
    guess[0] ^= 1
    assert _hd(circuit, locked.with_key(guess)) > 0.0


def test_no_same_mask_cube_pairs_selected():
    """Key-orbit regression: covers with two same-mask cubes (XOR-shaped
    failing sets) admit a wrong-but-equivalent key flip that swaps the
    comparators; the planner must reject such faults."""
    from repro.locking.atpg_lock import _cover_has_flip_symmetry
    from repro.atpg.cubes import Cube
    from repro.atpg.patterns import FailingPatterns
    from repro.atpg.faults import StuckAtFault

    symmetric = FailingPatterns(
        StuckAtFault("x", 0),
        ["a", "b"],
        {"o": {0b01, 0b10}},
        {"o": [Cube(0b11, 0b01), Cube(0b11, 0b10)]},
    )
    assert _cover_has_flip_symmetry(symmetric)
    asymmetric = FailingPatterns(
        StuckAtFault("x", 0),
        ["a", "b"],
        {"o": {0b01, 0b00}},
        {"o": [Cube(0b10, 0b00)]},
    )
    assert not _cover_has_flip_symmetry(asymmetric)


def test_fully_flipped_key_breaks_function():
    """The antipodal key must not be a functional equivalent (the orbit
    the symmetry rejection exists to eliminate)."""
    from repro.sat.lec import check_equivalence

    circuit = build_random_circuit(33, num_inputs=12, num_gates=180)
    locked, _ = atpg_lock(
        circuit, AtpgLockConfig(key_bits=16, seed=5, run_lec=False)
    )
    all_wrong = [1 - b for b in locked.key]
    lec = check_equivalence(circuit, locked.with_key(all_wrong))
    assert lec.equivalent is False


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
def test_cascade_removed_area_counts_mffc(c17_circuit):
    area = cascade_removed_area(c17_circuit, "N10", 1)
    assert area > 0.0


def test_restore_area_estimate_tracks_insertion(c17_circuit):
    module = extract_fault_module(c17_circuit, "N10", max_support=5)
    patterns = enumerate_failing_patterns(
        module.module, StuckAtFault("N10", 1), max_inputs=5
    )
    estimate = restore_area_estimate(patterns)
    assert estimate > 0.0
