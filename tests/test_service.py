"""Campaign service: job state machine, spec envelopes, HTTP end to end.

The load-bearing guarantees under test:

* the job state machine only walks its allowed edges
  (``queued → running → done | failed | cancelled``);
* spec envelopes survive a JSON round trip for both campaign kinds;
* results streamed over real HTTP are **bit-identical** to the same
  spec executed in process (the CLI path), modulo wall-clock keys;
* identical cells submitted by concurrent jobs are computed exactly
  once (the in-flight dedupe table) yet delivered to every submitter.

The end-to-end tests talk real HTTP to a :class:`ServiceThread` on an
ephemeral localhost port — the same harness CI's service jobs use.
"""

from __future__ import annotations

import json

import pytest

from repro.runner import run_attack_campaign, run_campaign
from repro.runner.serialize import attack_record, canonical_json, cell_record
from repro.runner.spec import (
    AttackCampaignSpec,
    CampaignSpec,
    parse_spec_payload,
    spec_payload,
)
from repro.service import (
    InvalidTransition,
    Job,
    JobState,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
)
from repro.service.jobs import CELL_PENDING, cell_key

#: Tiny two-cell grid for the HTTP round trips (seconds of runtime).
E2E = CampaignSpec(
    benchmarks=("random:i8-o4-g60",),
    split_layers=(4, 6),
    key_bits=(10,),
    scale=1.0,
    hd_patterns=256,
    max_candidates=60,
)

ATTACK_E2E = AttackCampaignSpec(
    benchmarks=("random:i8-o4-g60",),
    scenarios=("netflow", "random"),
    split_layers=(4,),
    key_bits=(10,),
    scale=1.0,
    hd_patterns=256,
    max_candidates=60,
)

#: Defense x attack matrix over the same layout: two defense axis
#: points, one scenario — four cells, the service's matrix-job shape.
MATRIX_E2E = AttackCampaignSpec(
    benchmarks=("random:i8-o4-g60",),
    scenarios=("netflow",),
    defenses=("none", "wire-lifting-lite", "routing-perturbation"),
    split_layers=(4,),
    key_bits=(10,),
    scale=1.0,
    hd_patterns=256,
    max_candidates=60,
)


def _job(n_cells: int = 2) -> Job:
    cells = E2E.cells() * (n_cells // 2 + 1)
    return Job(id="t1", kind="campaign", spec=E2E, cells=cells[:n_cells])


# ---------------------------------------------------------------------------
# Job state machine


def test_job_walks_the_happy_path():
    job = _job()
    assert job.state is JobState.QUEUED and not job.is_terminal
    assert job.cell_states == [CELL_PENDING, CELL_PENDING]
    job.transition(JobState.RUNNING)
    assert job.started is not None and job.finished is None
    job.transition(JobState.DONE)
    assert job.is_terminal and job.finished is not None
    assert job.summary()["wall_seconds"] >= 0


def test_job_rejects_forbidden_edges():
    job = _job()
    with pytest.raises(InvalidTransition, match="queued -> done"):
        job.transition(JobState.DONE)
    with pytest.raises(InvalidTransition):
        job.transition(JobState.FAILED)
    job.transition(JobState.RUNNING)
    with pytest.raises(InvalidTransition, match="running -> queued"):
        job.transition(JobState.QUEUED)
    job.transition(JobState.FAILED)
    for sink_escape in JobState:
        with pytest.raises(InvalidTransition):
            job.transition(sink_escape)


def test_job_queued_can_be_cancelled_directly():
    job = _job()
    job.transition(JobState.CANCELLED)
    assert job.state is JobState.CANCELLED and job.is_terminal


def test_job_summary_counts_cells():
    job = _job()
    job.cell_states[0] = "done"
    summary = job.summary()
    assert summary["cells"] == {
        "total": 2,
        "pending": 1,
        "done": 1,
        "failed": 0,
        "cancelled": 0,
    }


def test_cell_key_is_the_cache_content_key():
    a, b = E2E.cells()
    assert cell_key(a) != cell_key(b)  # different split layers
    assert cell_key(a) == cell_key(E2E.cells()[0])  # pure function of spec
    attack_cells = ATTACK_E2E.cells()
    assert len({cell_key(c) for c in attack_cells}) == len(attack_cells)


# ---------------------------------------------------------------------------
# Spec envelope round trip


@pytest.mark.parametrize(
    "spec",
    [E2E, ATTACK_E2E, MATRIX_E2E],
    ids=["campaign", "attacks", "matrix"],
)
def test_spec_payload_round_trips_through_json(spec):
    envelope = json.loads(json.dumps(spec_payload(spec)))
    assert parse_spec_payload(envelope) == spec


def test_parse_spec_payload_rejects_bad_envelopes():
    with pytest.raises(ValueError, match="kind"):
        parse_spec_payload({"spec": {}})
    with pytest.raises(ValueError, match="kind"):
        parse_spec_payload({"kind": "nope", "spec": {}})
    with pytest.raises(ValueError):
        parse_spec_payload({"kind": "campaign", "spec": {"benchmarks": 3}})
    with pytest.raises(TypeError):
        spec_payload("not a spec")


def test_service_config_validation(monkeypatch):
    with pytest.raises(ValueError, match="port"):
        ServiceConfig(port=70000)
    with pytest.raises(ValueError, match="workers"):
        ServiceConfig(workers=0)
    with pytest.raises(ValueError, match="max_jobs"):
        ServiceConfig(max_jobs=0)
    monkeypatch.setenv("REPRO_SERVICE_HOST", "0.0.0.0")
    monkeypatch.setenv("REPRO_SERVICE_PORT", "9000")
    monkeypatch.setenv("REPRO_SERVICE_MAX_JOBS", "7")
    config = ServiceConfig.from_env()
    assert (config.host, config.port, config.max_jobs) == ("0.0.0.0", 9000, 7)
    # explicit arguments beat the environment
    assert ServiceConfig.from_env(port=0).port == 0


# ---------------------------------------------------------------------------
# End to end over real HTTP


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    config = ServiceConfig(
        port=0,
        workers=2,
        cache_dir=tmp_path_factory.mktemp("service-cache"),
    )
    with ServiceThread(config) as thread:
        yield thread


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.url)


def _streamed(client, spec_or_envelope):
    summary = client.submit(spec_or_envelope)
    results, errors, done = [], [], None
    for record in client.stream(summary["id"]):
        if record["event"] == "result":
            results.append(record)
        elif record["event"] == "error":
            errors.append(record)
        else:
            done = record["job"]
    results.sort(key=lambda r: r["index"])
    return summary, results, errors, done


def test_http_stream_matches_in_process_execution(client, server):
    summary, results, errors, done = _streamed(client, E2E)
    assert summary["kind"] == "campaign" and summary["cells"]["total"] == 2
    assert not errors and done["state"] == "done"
    assert [r["index"] for r in results] == [0, 1]

    reference = run_campaign(E2E, workers=1, use_cache=False)
    expected = [cell_record(r) for r in reference.cells]
    stripped = [
        {k: v for k, v in r.items() if k not in ("event", "index")}
        for r in results
    ]
    assert canonical_json(stripped) == canonical_json(expected)

    # the buffered-results endpoint agrees with the stream
    payload = client.results(summary["id"])
    assert payload["partial"] is False
    assert canonical_json(
        [
            {k: v for k, v in r.items() if k not in ("event", "index")}
            for r in payload["results"]
        ]
    ) == canonical_json(expected)


def test_attack_job_over_http(client):
    summary, results, errors, done = _streamed(client, ATTACK_E2E)
    assert summary["kind"] == "attacks"
    assert not errors and done["state"] == "done"
    assert {r["cell"]["scenario"]["name"] for r in results} == {
        "netflow",
        "random",
    }
    assert all("ccr" in r and "pnr" in r for r in results)


def test_matrix_job_matches_in_process_execution(client):
    summary, results, errors, done = _streamed(client, MATRIX_E2E)
    assert summary["kind"] == "attacks"
    assert summary["cells"]["total"] == 3
    assert not errors and done["state"] == "done"

    reference = run_attack_campaign(MATRIX_E2E, workers=1, use_cache=False)
    expected = [attack_record(r) for r in reference.cells]
    stripped = [
        {k: v for k, v in r.items() if k not in ("event", "index")}
        for r in results
    ]
    assert canonical_json(stripped) == canonical_json(expected)
    # defended records carry the arms-race block, the baseline does not
    by_defense = {
        (r["cell"].get("defense") or {}).get("name"): r for r in results
    }
    assert set(by_defense) == {None, "wire-lifting-lite",
                               "routing-perturbation"}
    assert "defense" not in by_defense[None]
    assert (
        by_defense["wire-lifting-lite"]["defense"]["protected_nets"] > 0
    )


def test_concurrent_identical_jobs_are_deduped(client):
    fresh = CampaignSpec(
        benchmarks=("random:i9-o4-g70",),
        split_layers=(4, 6),
        key_bits=(10,),
        scale=1.0,
        hd_patterns=256,
        max_candidates=60,
    )
    before = client.metrics()
    first = client.submit(fresh)
    second = client.submit(fresh)  # submitted while the first is in flight
    assert first["id"] != second["id"]
    records = {}
    for summary in (first, second):
        streamed = [
            r for r in client.stream(summary["id"]) if r["event"] == "result"
        ]
        streamed.sort(key=lambda r: r["index"])
        records[summary["id"]] = canonical_json(
            [
                {k: v for k, v in r.items() if k not in ("event", "index")}
                for r in streamed
            ]
        )
    assert records[first["id"]] == records[second["id"]]
    after = client.metrics()
    unique = len(fresh.cells())
    assert (
        after["cells"]["computed"] - before["cells"]["computed"] == unique
    )
    assert (
        after["cells"]["deduped"] - before["cells"]["deduped"] == unique
    )
    # exactly-once at the artifact level too: one run-stage store each
    run_stage = after["cache"]["stages"]["run"]
    assert run_stage["misses"] == run_stage["stores"]


def test_cancel_pending_job(client):
    spec = CampaignSpec(
        benchmarks=("random:i10-o5-g80", "random:i11-o5-g85"),
        split_layers=(4, 6),
        key_bits=(10,),
        scale=1.0,
        hd_patterns=256,
        max_candidates=60,
    )
    summary = client.submit(spec)
    response = client.cancel(summary["id"])
    assert response["cancelled"] is True
    final = client.wait(summary["id"], timeout=120)
    assert final["state"] == "cancelled"
    assert final["cells"]["cancelled"] > 0
    # cancelling a finished job is a no-op
    assert client.cancel(summary["id"])["cancelled"] is False


def test_http_error_surfaces(client):
    with pytest.raises(ServiceError) as excinfo:
        client.job("j9999-nope")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        client.submit({"kind": "nope", "spec": {}})
    assert excinfo.value.status == 400
    with pytest.raises(ServiceError) as excinfo:
        client._request("POST", "/healthz")
    assert excinfo.value.status == 405
    with pytest.raises(ServiceError) as excinfo:
        client._request("GET", "/nowhere")
    assert excinfo.value.status == 404


def test_health_metrics_and_job_listing(client):
    health = client.health()
    assert health["status"] == "ok" and health["workers"] == 2
    metrics = client.metrics()
    assert metrics["jobs"]["submitted"] >= 1
    assert metrics["cells"]["completed"] >= 1
    assert metrics["cache"]["stages"]  # per-stage breakdown present
    listed = client.jobs()
    assert any(j["state"] == "done" for j in listed)


# ---------------------------------------------------------------------------
# Job timing and executor start method


def test_job_duration_survives_wall_clock_step(monkeypatch):
    """wall_seconds must come from monotonic pairs, not time.time().

    A backwards NTP step (or suspend/resume) between start and finish
    would make a wall-clock subtraction negative; the monotonic clock
    cannot step, so the reported duration stays sane.
    """
    import time as time_module

    job = _job()
    job.transition(JobState.RUNNING)
    # The wall clock jumps an hour into the past mid-job.
    real_time = time_module.time
    monkeypatch.setattr(
        "repro.service.jobs.time.time", lambda: real_time() - 3600.0
    )
    job.transition(JobState.DONE)
    summary = job.summary()
    assert summary["finished"] < summary["started"]  # display fields stepped
    assert summary["wall_seconds"] is not None
    assert 0.0 <= summary["wall_seconds"] < 60.0


def test_job_summary_without_start_has_no_duration():
    job = _job()
    assert job.summary()["wall_seconds"] is None
    job.transition(JobState.CANCELLED)
    assert job.summary()["wall_seconds"] is None


def test_campaign_executor_never_uses_fork():
    """The service pool lives in a threaded server: fork would snapshot
    lock/condition state mid-flight. The executor must pin a non-fork
    start method rather than inherit the platform default."""
    from repro.runner.engine import CampaignExecutor

    with CampaignExecutor(workers=1) as executor:
        method = executor._pool._mp_context.get_start_method()
    assert method in ("spawn", "forkserver")
