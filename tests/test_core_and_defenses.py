"""End-to-end flow, security-layer math, and defense baseline tests."""

import math

import pytest

from repro.benchgen import c17, load_iscas85
from repro.core import (
    SplitLockConfig,
    SplitLockFlow,
    brute_force_work_factor,
    constrained_keyspace_size,
    is_negligible,
    keyspace_size,
    security_bits,
    theorem1_bound,
)
from repro.core.config import LayoutConfig
from repro.defenses import (
    evaluate_beol_restore,
    evaluate_routing_perturbation,
    evaluate_wire_lifting,
)
from repro.locking import AtpgLockConfig
from tests.conftest import build_random_circuit


# ----------------------------------------------------------------------
# Security layer (Sec. II-C)
# ----------------------------------------------------------------------
def test_theorem1_bound_values():
    assert theorem1_bound(1) == 0.5
    assert theorem1_bound(128) == pytest.approx(2.0**-128)
    assert theorem1_bound(10, epsilon=0.1) == pytest.approx(0.6**10)


def test_theorem1_bound_rejects_bad_epsilon():
    with pytest.raises(ValueError):
        theorem1_bound(8, epsilon=0.5)


def test_negligibility():
    assert is_negligible(theorem1_bound(128), security_parameter=128)
    assert not is_negligible(0.3, security_parameter=128)


def test_keyspace_sizes():
    assert keyspace_size(8) == 256
    assert constrained_keyspace_size(8, 4) == math.comb(8, 4)
    # seeing the TIE polarities costs only ~log2(sqrt(pi k/2)) bits
    assert security_bits(128, 64) > 120
    assert security_bits(128) == 128.0


def test_brute_force_work_factor_is_astronomical():
    seconds = brute_force_work_factor(128)
    assert seconds > 1e20  # far beyond any real budget


# ----------------------------------------------------------------------
# End-to-end flow
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def flow_result():
    config = SplitLockConfig(
        lock=AtpgLockConfig(key_bits=12, seed=6, run_lec=True),
        layout=LayoutConfig(seed=4),
        split_layers=(4, 6),
    )
    circuit = build_random_circuit(50, num_inputs=12, num_gates=180, num_outputs=8)
    flow = SplitLockFlow(config)
    return flow, flow.run(circuit)


def test_flow_produces_all_layouts(flow_result):
    _, result = flow_result
    assert result.lock_report.lec_equivalent is True
    assert set(result.split_layouts) == {4, 6}
    assert result.prelift_layout.split_layer is None
    assert result.split_layouts[4].split_layer == 4


def test_flow_layout_costs(flow_result):
    _, result = flow_result
    costs = result.layout_costs()
    assert {"unprotected", "prelift", "M4", "M6"} <= set(costs)
    base = costs["unprotected"]
    for key in ("prelift", "M4", "M6"):
        deltas = costs[key].delta_percent(base)
        assert all(abs(v) < 400 for v in deltas.values())


def test_flow_evaluation_metrics(flow_result):
    flow, result = flow_result
    evaluation = flow.evaluate_split(result, 4, hd_patterns=2048)
    assert 0 <= evaluation.ccr.key_logical_ccr <= 100
    assert evaluation.ccr.key_physical_ccr <= 50
    assert evaluation.hd_oer.oer_percent > 50
    assert evaluation.broken_nets > 0


def test_flow_handles_sequential_inputs():
    from repro.benchgen import GeneratorConfig, generate_random_circuit

    seq = generate_random_circuit(
        GeneratorConfig(num_inputs=8, num_outputs=4, num_gates=120, num_dffs=6),
        seed=9,
        name="seqflow",
    )
    config = SplitLockConfig(
        lock=AtpgLockConfig(key_bits=8, seed=7, run_lec=True),
        split_layers=(4,),
    )
    flow = SplitLockFlow(config)
    result = flow.run(seq)
    assert result.lock_report.lec_equivalent is True
    assert not result.original.is_sequential  # core was extracted


def test_flow_on_c17_smoke():
    config = SplitLockConfig(
        lock=AtpgLockConfig(
            key_bits=6, max_support=5, max_minterms=16, seed=1
        ),
        split_layers=(4,),
    )
    flow = SplitLockFlow(config)
    result = flow.run(c17())
    evaluation = flow.evaluate_split(result, 4, hd_patterns=256)
    assert result.locked.key_length == 6
    assert evaluation.hd_oer.patterns == 256


# ----------------------------------------------------------------------
# Defense baselines (Table III shape)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def defense_outcomes():
    circuit = load_iscas85("c432")
    return {
        "perturb": evaluate_routing_perturbation(circuit, hd_patterns=2048),
        "lift": evaluate_wire_lifting(circuit, hd_patterns=2048),
        "restore": evaluate_beol_restore(circuit, hd_patterns=2048),
    }


def test_routing_perturbation_is_weak(defense_outcomes):
    outcome = defense_outcomes["perturb"]
    assert outcome.ccr_percent > 35.0  # the attack recovers most
    assert outcome.pnr_percent > 35.0


def test_wire_lifting_is_strong(defense_outcomes):
    outcome = defense_outcomes["lift"]
    assert outcome.ccr_percent < 10.0
    assert outcome.oer_percent > 90.0


def test_beol_restore_is_strong(defense_outcomes):
    outcome = defense_outcomes["restore"]
    assert outcome.ccr_percent < 10.0
    assert outcome.hd_percent > 20.0


def test_defense_ordering_matches_table3(defense_outcomes):
    """[22] leaves far more recoverable structure than [12]/[13]."""
    assert (
        defense_outcomes["perturb"].pnr_percent
        > defense_outcomes["lift"].pnr_percent
    )
    assert (
        defense_outcomes["perturb"].ccr_percent
        > defense_outcomes["restore"].ccr_percent
    )
