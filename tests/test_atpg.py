"""ATPG tests: faults, collapsing, fault simulation, PODEM, failing sets."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import (
    Cube,
    FailingSetTooLarge,
    FaultSimulator,
    PodemEngine,
    StuckAtFault,
    all_faults,
    collapse_faults,
    cover_care_bits,
    cover_minterms,
    enumerate_failing_patterns,
    exact_cover,
    failing_output_words,
    fault_coverage,
    internal_faults,
    verify_cover_exactness,
)
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.sim.bitparallel import exhaustive_words, random_words
from repro.sim.event_sim import evaluate_outputs
from tests.conftest import build_random_circuit


def test_fault_universe_size(c17_circuit):
    faults = all_faults(c17_circuit)
    assert len(faults) == 2 * 11  # 5 inputs + 6 gates


def test_fault_validation():
    with pytest.raises(ValueError):
        StuckAtFault("x", 2)


def test_collapsing_reduces(c17_circuit):
    full = all_faults(c17_circuit)
    collapsed = collapse_faults(c17_circuit)
    assert len(collapsed) < len(full)
    assert set(collapsed) <= set(full)


def test_internal_faults_exclude_interface(c17_circuit):
    faults = internal_faults(c17_circuit)
    nets = {f.net for f in faults}
    assert not nets & set(c17_circuit.inputs)
    assert not nets & set(c17_circuit.outputs)


def test_fault_simulator_agrees_with_event_sim(c17_circuit):
    rng = random.Random(0)
    words = random_words(c17_circuit.inputs, 64, rng)
    simulator = FaultSimulator(c17_circuit, words, 64)
    for fault in internal_faults(c17_circuit):
        word = simulator.detection_word(fault)
        # verify one detected lane and one undetected lane against the
        # event-driven oracle
        for lane in range(64):
            expected_bit = (word >> lane) & 1
            assignment = {
                n: (words[n] >> lane) & 1 for n in c17_circuit.inputs
            }
            good = evaluate_outputs(c17_circuit, assignment)
            bad = evaluate_outputs(
                c17_circuit, assignment, overrides={fault.net: fault.value}
            )
            assert expected_bit == (1 if good != bad else 0)
            if lane > 8:
                break  # a prefix is enough per fault; keeps test fast


def test_fault_coverage_counts(c17_circuit):
    words, lanes = exhaustive_words(c17_circuit.inputs)
    ratio, undetected = fault_coverage(
        c17_circuit, internal_faults(c17_circuit), words, lanes
    )
    assert ratio == 1.0  # c17 is fully testable
    assert not undetected


def test_failing_output_words(c17_circuit):
    words, lanes = exhaustive_words(c17_circuit.inputs)
    diff = failing_output_words(
        c17_circuit, StuckAtFault("N10", 0), words, lanes
    )
    assert diff["N22"] != 0
    assert diff["N23"] == 0  # N10 does not reach N23


def test_podem_detects_all_c17_faults(c17_circuit):
    engine = PodemEngine(c17_circuit)
    for fault in all_faults(c17_circuit):
        result = engine.generate(fault)
        assert result.detected, f"{fault} should be testable"
        assignment = {n: result.test_cube.get(n, 0) for n in c17_circuit.inputs}
        good = evaluate_outputs(c17_circuit, assignment)
        bad = evaluate_outputs(
            c17_circuit, assignment, overrides={fault.net: fault.value}
        )
        assert good != bad


def test_podem_finds_redundancy():
    circuit = Circuit("red")
    circuit.add_input("a")
    circuit.add_input("b")
    circuit.add("t", GateType.AND, ("a", "b"))
    circuit.add("z", GateType.OR, ("a", "t"))  # t s-a-0 is redundant
    circuit.add_output("z")
    engine = PodemEngine(circuit)
    assert engine.generate(StuckAtFault("t", 0)).status == "redundant"
    assert engine.generate(StuckAtFault("t", 1)).detected


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 100))
def test_podem_cubes_detect_for_any_x_fill(seed):
    """Property: a PODEM test cube detects under every X fill."""
    circuit = build_random_circuit(seed, num_inputs=6, num_gates=30)
    engine = PodemEngine(circuit, backtrack_limit=500)
    rng = random.Random(seed)
    faults = internal_faults(circuit)
    if not faults:
        return
    fault = rng.choice(faults)
    result = engine.generate(fault)
    if not result.detected:
        return
    for fill in (0, 1):
        assignment = {
            n: result.test_cube.get(n, fill) for n in circuit.inputs
        }
        good = evaluate_outputs(circuit, assignment)
        bad = evaluate_outputs(
            circuit, assignment, overrides={fault.net: fault.value}
        )
        assert good != bad


def test_cube_basics():
    cube = Cube(0b101, 0b100)
    assert cube.contains(0b110)
    assert cube.contains(0b100)
    assert not cube.contains(0b001)
    assert cube.care_count() == 2
    assert cube.num_minterms(3) == 2
    assert cube.to_pattern_string(3) == "1 x 0"


def test_cube_rejects_bits_outside_mask():
    with pytest.raises(ValueError):
        Cube(0b001, 0b010)


@settings(max_examples=30, deadline=None)
@given(
    st.sets(st.integers(0, 63), max_size=32),
)
def test_exact_cover_is_exact(minterms):
    """Property: exact_cover reproduces precisely the given minterm set."""
    cover = exact_cover(minterms, 6)
    assert cover_minterms(cover, 6) == minterms


def test_exact_cover_compresses():
    # full 2-cube: {0,1,2,3} over 2 vars -> single empty-mask cube
    cover = exact_cover({0, 1, 2, 3}, 2)
    assert len(cover) == 1
    assert cover[0].care_count() == 0
    assert cover_care_bits(cover) == 0


def test_exact_cover_respects_limit():
    with pytest.raises(ValueError):
        exact_cover(set(range(100)), 7, max_minterms=50)


def test_enumerate_failing_patterns_c17(c17_circuit):
    module = c17_circuit.extract_cone(["N22", "N23"], name="m")
    patterns = enumerate_failing_patterns(module, StuckAtFault("N10", 0))
    assert patterns.affected_outputs == ["N22"]
    assert verify_cover_exactness(patterns)
    assert patterns.key_bits() == cover_care_bits(patterns.unique_cubes())
    assert not patterns.is_redundant


def test_enumerate_rejects_wide_modules():
    circuit = build_random_circuit(3, num_inputs=10, num_gates=40)
    module = circuit.extract_cone(list(circuit.outputs))
    with pytest.raises(ValueError):
        enumerate_failing_patterns(
            module,
            StuckAtFault(next(iter(circuit.outputs)), 0),
            max_inputs=4,
        )


def test_enumerate_flags_large_failing_sets(c17_circuit):
    module = c17_circuit.extract_cone(["N22", "N23"], name="m")
    with pytest.raises(FailingSetTooLarge):
        enumerate_failing_patterns(
            module, StuckAtFault("N16", 1), max_minterms=1
        )


def test_confirm_test_cubes_batched(c17_circuit):
    """One batched array sweep confirms every PODEM cube for every fill."""
    from repro.atpg import confirm_test_cubes

    engine = PodemEngine(c17_circuit)
    results = [engine.generate(f) for f in collapse_faults(c17_circuit)]
    confirm_test_cubes(c17_circuit, results)
    for result in results:
        if result.detected:
            assert result.confirmed is True
        else:
            assert result.confirmed is None
    # A corrupted cube (complemented assignments) must not confirm.
    victim = next(r for r in results if r.detected)
    victim.test_cube = {net: 1 - v for net, v in victim.test_cube.items()}
    confirm_test_cubes(c17_circuit, [victim])
    assert victim.confirmed is False


def test_confirm_test_cubes_random_circuits():
    from repro.atpg import confirm_test_cubes

    for seed in range(6):
        circuit = build_random_circuit(seed, num_inputs=6, num_gates=30)
        engine = PodemEngine(circuit, backtrack_limit=500)
        results = [engine.generate(f) for f in collapse_faults(circuit)[:24]]
        confirm_test_cubes(circuit, results)
        assert all(r.confirmed for r in results if r.detected)


def test_confirm_test_cubes_empty_is_noop():
    from repro.atpg import confirm_test_cubes

    assert confirm_test_cubes(Circuit("empty"), []) == []
