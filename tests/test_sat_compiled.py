"""Differential tests: compiled array-native CDCL vs the reference solver.

**Search-identity is the contract** (see :mod:`repro.sat.dispatch`): the
compiled engine must walk the same decision sequence, learn the same
clauses, and return the same model and ``SolverStats`` counters as the
reference solver on every instance — not merely agree on sat/unsat.
Stats equality is a strong proxy: a single diverging decision, swapped
watch, or reordered learned-clause literal shifts the downstream
propagation/conflict counts within a handful of steps.

Several instances additionally pin the *absolute* reference stats so a
change that perturbs both engines in lockstep (e.g. a branching-order
"optimisation") still trips a test and must be made deliberately.
"""

import random

import pytest

from repro.benchgen import GeneratorConfig, generate_random_circuit
from repro.locking.atpg_lock import AtpgLockConfig, atpg_lock
from repro.runner.spec import AttackCampaignSpec
from repro.runner.stages import attack_payload, table3_payload
from repro.sat.cnf import Cnf
from repro.sat.compiled import CompiledCdclSolver
from repro.sat.dispatch import make_solver, resolve_sat_engine
from repro.sat.lec import build_miter
from repro.sat.solver import CdclSolver, VarOrderHeap, solve_cnf
from repro.utils.artifact_cache import spec_key

# --------------------------------------------------------------------------
# Instance builders.


def random_3cnf(seed: int, num_vars: int = 40, num_clauses: int = 170) -> Cnf:
    """Near-phase-transition random 3-CNF (deterministic per seed)."""
    rng = random.Random(seed)
    cnf = Cnf(num_vars=num_vars)
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), 3)
        cnf.add_clause([rng.choice([1, -1]) * v for v in variables])
    return cnf


def lock_miter(wrong_bit: int | None = None) -> Cnf:
    """Miter of a locked benchmark (keyed) against its original.

    With the correct key the miter is UNSAT (the restore logic cancels
    the injected faults); flipping *wrong_bit* makes it SAT.
    """
    circuit = generate_random_circuit(
        GeneratorConfig(num_inputs=10, num_outputs=6, num_gates=120),
        seed=5,
        name="pin",
    ).combinational_core()
    locked, _report = atpg_lock(
        circuit, AtpgLockConfig(key_bits=8, seed=5, run_lec=False)
    )
    guess = list(locked.key)
    if wrong_bit is not None:
        guess[wrong_bit] ^= 1
    cnf, _, _ = build_miter(locked.with_key(guess), circuit)
    return cnf


def run_engine(cls, cnf: Cnf, assumptions=None, conflict_limit=None):
    solver = cls(cnf.num_vars, conflict_limit=conflict_limit)
    for clause in cnf.clauses:
        solver.add_clause(clause)
    result = solver.solve(assumptions=assumptions)
    return result.status, result.model, vars(result.stats)


def assert_search_identical(cnf, assumptions=None, conflict_limit=None):
    """Both engines: same status, same model, same stats. Returns ref."""
    ref = run_engine(
        CdclSolver, cnf, assumptions=assumptions, conflict_limit=conflict_limit
    )
    compiled = run_engine(
        CompiledCdclSolver,
        cnf,
        assumptions=assumptions,
        conflict_limit=conflict_limit,
    )
    assert compiled == ref
    if ref[0] == "sat":
        assert cnf.evaluate(ref[1])
    return ref


# --------------------------------------------------------------------------
# Pinned reference stats: (status, decisions, propagations, conflicts,
# restarts, learned, deleted).  These guard against *both* engines
# drifting together — refresh deliberately when search behaviour is
# meant to change.

PINNED_RANDOM = {
    1: ("unsat", 41, 510, 37, 1, 34, 0),
    2: ("sat", 49, 636, 40, 1, 36, 0),
    3: ("unsat", 27, 461, 26, 0, 21, 0),
    4: ("sat", 32, 346, 22, 0, 22, 0),
    5: ("unsat", 50, 758, 45, 1, 39, 0),
}

PINNED_MITER = ("unsat", 236, 15517, 173, 4, 165, 0)

#: Hard enough to overflow the initial learnt-clause budget (1000) and
#: force a ``_reduce_db`` round, exercising pool compaction + remap.
PINNED_DELETION = ("unsat", 1325, 40050, 1041, 14, 1032, 496)

#: Wide enough (500 vars) that conflict analysis learns clauses past
#: the compiled engine's vector replacement-scan threshold, exercising
#: the hybrid wide-clause watch search.
PINNED_WIDE = ("unknown", 1003, 42133, 502, 9, 502, 0)


def as_tuple(status, stats):
    return (
        status,
        stats["decisions"],
        stats["propagations"],
        stats["conflicts"],
        stats["restarts"],
        stats["learned"],
        stats["deleted"],
    )


@pytest.mark.parametrize("seed", sorted(PINNED_RANDOM))
def test_random_3cnf_search_identical_and_pinned(seed):
    cnf = random_3cnf(seed)
    status, _model, stats = assert_search_identical(cnf)
    assert as_tuple(status, stats) == PINNED_RANDOM[seed]


@pytest.mark.parametrize("seed", range(6, 16))
def test_random_3cnf_differential_unpinned(seed):
    assert_search_identical(random_3cnf(seed))


def test_lock_miter_correct_key_unsat_pinned():
    status, _model, stats = assert_search_identical(lock_miter())
    assert as_tuple(status, stats) == PINNED_MITER


def test_lock_miter_wrong_key_sat():
    status, model, _stats = assert_search_identical(lock_miter(wrong_bit=0))
    assert status == "sat"
    assert model  # distinguishing input exists and satisfies the miter


def test_clause_deletion_search_identical_and_pinned():
    cnf = random_3cnf(0, num_vars=150, num_clauses=645)
    status, _model, stats = assert_search_identical(cnf, conflict_limit=1600)
    assert as_tuple(status, stats) == PINNED_DELETION


def test_wide_learned_clauses_search_identical_and_pinned():
    cnf = random_3cnf(1, num_vars=500, num_clauses=2140)
    status, _model, stats = assert_search_identical(cnf, conflict_limit=500)
    assert as_tuple(status, stats) == PINNED_WIDE


def test_conflict_limit_unknown_exit_identical():
    """Both engines stop at the same search state when the limit trips."""
    cnf = random_3cnf(2, num_vars=150, num_clauses=645)
    status, model, stats = assert_search_identical(cnf, conflict_limit=1600)
    assert status == "unknown"
    assert model is None
    assert stats["conflicts"] == 1600
    assert stats["deleted"] > 0  # the limit struck after a reduce round


@pytest.mark.parametrize("seed", (1, 2, 4))
def test_assumptions_search_identical(seed):
    cnf = random_3cnf(seed)
    assert_search_identical(cnf, assumptions=[1, -2])
    assert_search_identical(cnf, assumptions=[-1, 3, 5])


def test_unsat_under_assumptions_identical():
    cnf = Cnf(num_vars=3)
    cnf.add_clause((1, 2))
    cnf.add_clause((-1, 3))
    status, _model, _stats = assert_search_identical(
        cnf, assumptions=[-1, -2]
    )
    assert status == "unsat"
    # and the same solver semantics as the reference suite's cases
    assert assert_search_identical(cnf, assumptions=[-2])[0] == "sat"


def test_tautology_and_duplicate_clause_handling_identical():
    for cls in (CdclSolver, CompiledCdclSolver):
        solver = cls(2)
        solver.add_clause([1, -1])  # tautology: dropped
        solver.add_clause([2, 2])  # duplicate literal: deduplicated
        result = solver.solve()
        assert result.sat and result.model[2], cls.__name__


def test_trivial_and_root_conflicts_identical():
    empty = Cnf(num_vars=4)
    empty.add_clause((1,))
    assert_search_identical(empty)
    contra = Cnf(num_vars=1)
    contra.add_clause((1,))
    contra.add_clause((-1,))
    assert assert_search_identical(contra)[0] == "unsat"


# --------------------------------------------------------------------------
# Dispatcher: knob, explicit engine, and cache-key participation.


def test_make_solver_routes_engines(monkeypatch):
    assert isinstance(make_solver(4, engine="compiled"), CompiledCdclSolver)
    assert isinstance(make_solver(4, engine="reference"), CdclSolver)
    # numpy is present in the test environment: auto takes the fast path
    assert isinstance(make_solver(4), CompiledCdclSolver)
    assert resolve_sat_engine() == "compiled"
    monkeypatch.setenv("REPRO_SAT_ENGINE", "reference")
    assert isinstance(make_solver(4), CdclSolver)
    assert resolve_sat_engine() == "reference"
    # the explicit argument wins over the environment knob
    assert isinstance(make_solver(4, engine="compiled"), CompiledCdclSolver)


def test_make_solver_rejects_unknown_engine(monkeypatch):
    with pytest.raises(ValueError):
        make_solver(4, engine="bogus")
    monkeypatch.setenv("REPRO_SAT_ENGINE", "not-an-engine")
    with pytest.raises(ValueError):
        solve_cnf(random_3cnf(1))


def test_solve_cnf_engine_param_matches(monkeypatch):
    cnf = random_3cnf(3)
    by_ref = solve_cnf(cnf, engine="reference")
    by_compiled = solve_cnf(cnf, engine="compiled")
    assert by_ref.status == by_compiled.status
    assert by_ref.model == by_compiled.model
    assert vars(by_ref.stats) == vars(by_compiled.stats)
    monkeypatch.setenv("REPRO_SAT_ENGINE", "reference")
    via_env = solve_cnf(cnf)
    assert vars(via_env.stats) == vars(by_ref.stats)


def test_sat_engine_participates_in_cache_keys(monkeypatch):
    spec = AttackCampaignSpec(
        benchmarks=("random:i10-o5-g90",),
        scenarios=("random",),
        split_layers=(4,),
        key_bits=(10,),
    )
    acell = spec.cells()[0]
    keys, t3_keys = {}, {}
    for engine in ("compiled", "reference"):
        monkeypatch.setenv("REPRO_SAT_ENGINE", engine)
        payload = attack_payload(acell)
        assert payload["sat_engine"] == engine
        keys[engine] = spec_key(payload)
        t3 = table3_payload("b14", "proposed", 1, 32, 1000)
        assert t3["sat_engine"] == engine
        t3_keys[engine] = spec_key(t3)
    assert keys["compiled"] != keys["reference"]
    assert t3_keys["compiled"] != t3_keys["reference"]


# --------------------------------------------------------------------------
# Reference branching heap (the scalar half of the shared EVSIDS order).


def test_var_order_heap_pops_max_activity_lowest_index_first():
    activity = [0.0, 2.0, 5.0, 5.0, 1.0]
    heap = VarOrderHeap(activity)
    heap.rebuild()
    assign = [-1] * 5
    # max activity wins; ties break toward the lowest variable index
    assert heap.pop_best(assign) == 2
    assert heap.pop_best(assign) == 3
    assert heap.pop_best(assign) == 1
    assert heap.pop_best(assign) == 4
    assert heap.pop_best(assign) == 0  # exhausted


def test_var_order_heap_discards_stale_entries():
    activity = [0.0, 1.0, 4.0]
    heap = VarOrderHeap(activity)
    heap.rebuild()
    # bump var 1 past var 2: the old entry for var 1 goes stale
    activity[1] = 9.0
    heap.push(1)
    assign = [-1, -1, -1]
    assert heap.pop_best(assign) == 1
    # assigned variables surface but are skipped
    assign[2] = 1
    assert heap.pop_best(assign) == 0
    assign[2] = -1
    heap.push(2)
    assert heap.pop_best(assign) == 2
