"""Artifact cache and REPRO_* environment-knob parsing."""

from __future__ import annotations

import os
import time

import pytest

from repro.utils.artifact_cache import (
    TMP_SUFFIX,
    ArtifactCache,
    CacheStats,
    StageStats,
    spec_key,
)
from repro.utils.env import (
    env_cache_dir,
    env_flag,
    env_int,
    env_name,
    env_positive_int,
    env_scale,
)


# ---------------------------------------------------------------------------
# spec_key canonicalisation


def test_spec_key_stable_under_ordering():
    assert spec_key({"a": 1, "b": (2, 3)}) == spec_key({"b": [2, 3], "a": 1})


def test_spec_key_sensitive_to_values():
    base = {"seed": 2019, "key_bits": 128}
    assert spec_key(base) != spec_key({**base, "seed": 2020})
    assert spec_key(base) != spec_key({**base, "key_bits": 64})
    assert spec_key(base) != spec_key({**base, "extra": None})


def test_spec_key_canonicalises_dataclasses():
    from repro.attacks.proximity import ProximityAttackConfig

    assert spec_key({"attack": ProximityAttackConfig()}) == spec_key(
        {"attack": ProximityAttackConfig()}
    )
    assert spec_key({"attack": ProximityAttackConfig()}) != spec_key(
        {"attack": ProximityAttackConfig(seed=8)}
    )


def test_spec_key_rejects_unkeyable_values():
    with pytest.raises(TypeError):
        spec_key({"bad": object()})


# ---------------------------------------------------------------------------
# ArtifactCache behaviour


def test_cache_round_trip(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = spec_key({"x": 1})
    assert cache.get("stage", key) is ArtifactCache._MISS
    cache.put("stage", key, {"payload": [1, 2, 3]})
    assert cache.get("stage", key) == {"payload": [1, 2, 3]}
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.entry_count() == 1


def test_get_or_create_computes_once(tmp_path):
    cache = ArtifactCache(tmp_path)
    calls = []

    def create():
        calls.append(1)
        return "value"

    payload = {"a": 1}
    assert cache.get_or_create("s", payload, create) == "value"
    assert cache.get_or_create("s", payload, create) == "value"
    assert len(calls) == 1


def test_corrupt_entry_is_evicted_and_recomputed(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = spec_key({"a": 1})
    cache.put("s", key, 42)
    next(tmp_path.glob("s/*.pkl")).write_bytes(b"garbage")
    assert cache.get("s", key) is ArtifactCache._MISS
    assert cache.entry_count() == 0


def test_clear_removes_everything(tmp_path):
    cache = ArtifactCache(tmp_path)
    for index in range(3):
        cache.put("s", spec_key({"i": index}), index)
    assert cache.clear() == 3
    assert cache.entry_count() == 0
    assert cache.size_bytes() == 0


# ---------------------------------------------------------------------------
# Per-stage stats, atomic writes, orphan sweeping


def test_per_stage_stats_tracked_separately(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.get_or_create("lock", {"a": 1}, lambda: "locked")
    cache.get_or_create("lock", {"a": 1}, lambda: "locked")
    cache.get_or_create("run", {"a": 1}, lambda: "ran")
    lock = cache.stats.stages["lock"]
    assert (lock.hits, lock.misses, lock.stores) == (1, 1, 1)
    run = cache.stats.stages["run"]
    assert (run.hits, run.misses, run.stores) == (0, 1, 1)
    assert cache.stats.hits == 1 and cache.stats.misses == 2
    # compute wall-clock attributed to the stage that paid it
    assert lock.compute_seconds >= 0 and run.compute_seconds >= 0


def test_cache_stats_merge_merges_stages():
    a = CacheStats(hits=1, misses=2, stores=2)
    a.stage("run").merge(StageStats(hits=1, misses=2, compute_seconds=0.5))
    b = CacheStats(hits=3, misses=1, stores=1)
    b.stage("run").merge(StageStats(hits=3, misses=1, compute_seconds=0.25))
    b.stage("lock").merge(StageStats(misses=1))
    a.merge(b)
    assert (a.hits, a.misses, a.stores) == (4, 3, 3)
    assert a.stage("run").hits == 4
    assert a.stage("run").compute_seconds == pytest.approx(0.75)
    assert a.stage("lock").misses == 1


def test_put_leaves_no_temp_files(tmp_path):
    cache = ArtifactCache(tmp_path)
    for index in range(5):
        cache.put("s", spec_key({"i": index}), list(range(100)))
    assert cache.orphan_count() == 0
    assert cache.entry_count() == 5


def test_orphan_cleanup_is_age_gated(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.put("s", spec_key({"a": 1}), "keep")
    stage_dir = tmp_path / "s"
    fresh = stage_dir / f"inflight{TMP_SUFFIX}"
    fresh.write_bytes(b"partial write")
    stale = stage_dir / f"abandoned{TMP_SUFFIX}"
    stale.write_bytes(b"partial write")
    old = time.time() - 7200
    os.utime(stale, (old, old))
    assert cache.orphan_count() == 2
    # default sweep spares the young (presumed in-flight) writer
    assert cache.cleanup_orphans() == 1
    assert fresh.exists() and not stale.exists()
    # force-sweep takes everything
    assert cache.cleanup_orphans(max_age_seconds=0) == 1
    assert cache.orphan_count() == 0
    # the real entry was never touched
    assert cache.get("s", spec_key({"a": 1})) == "keep"


def test_failed_put_cleans_its_temp_file(tmp_path):
    cache = ArtifactCache(tmp_path)

    class Unpicklable:
        def __reduce__(self):
            raise RuntimeError("nope")

    with pytest.raises(RuntimeError):
        cache.put("s", spec_key({"a": 1}), Unpicklable())
    assert cache.orphan_count() == 0
    assert cache.entry_count() == 0


# ---------------------------------------------------------------------------
# Environment knobs (the REPRO_SCALE=0 / empty-string fix)


def test_env_scale_unset_and_empty_mean_default(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert env_scale() is None
    monkeypatch.setenv("REPRO_SCALE", "")
    assert env_scale() is None
    monkeypatch.setenv("REPRO_SCALE", "  ")
    assert env_scale() is None


def test_env_scale_parses_value(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.05")
    assert env_scale() == 0.05


def test_env_scale_rejects_zero_and_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0")
    with pytest.raises(ValueError, match="must be > 0"):
        env_scale()
    monkeypatch.setenv("REPRO_SCALE", "-1")
    with pytest.raises(ValueError):
        env_scale()
    monkeypatch.setenv("REPRO_SCALE", "fast")
    with pytest.raises(ValueError, match="not a number"):
        env_scale()


def test_env_flag_semantics(monkeypatch):
    monkeypatch.delenv("REPRO_FULL", raising=False)
    assert env_flag("REPRO_FULL") is False
    for truthy in ("1", "true", "YES", "on"):
        monkeypatch.setenv("REPRO_FULL", truthy)
        assert env_flag("REPRO_FULL") is True
    for falsy in ("0", "false", "", "off"):
        monkeypatch.setenv("REPRO_FULL", falsy)
        assert env_flag("REPRO_FULL") is False
    monkeypatch.setenv("REPRO_FULL", "maybe")
    with pytest.raises(ValueError):
        env_flag("REPRO_FULL")


def test_env_int_and_cache_dir(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert env_int("REPRO_WORKERS") is None
    monkeypatch.setenv("REPRO_WORKERS", "4")
    assert env_int("REPRO_WORKERS") == 4
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert env_cache_dir() == tmp_path
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert env_cache_dir().name == "repro-splitlock"


def test_env_attack_seed_semantics(monkeypatch):
    """REPRO_ATTACK_SEED: 0 is a *valid* seed, empty means default."""
    monkeypatch.delenv("REPRO_ATTACK_SEED", raising=False)
    assert env_int("REPRO_ATTACK_SEED", 2019) == 2019
    monkeypatch.setenv("REPRO_ATTACK_SEED", "")
    assert env_int("REPRO_ATTACK_SEED", 2019) == 2019
    monkeypatch.setenv("REPRO_ATTACK_SEED", "0")
    assert env_int("REPRO_ATTACK_SEED", 2019) == 0
    monkeypatch.setenv("REPRO_ATTACK_SEED", "soon")
    with pytest.raises(ValueError, match="not an integer"):
        env_int("REPRO_ATTACK_SEED", 2019)


def test_env_attack_budget_rejects_zero(monkeypatch):
    """REPRO_ATTACK_BUDGET: explicit 0 is an error, never a default."""
    monkeypatch.delenv("REPRO_ATTACK_BUDGET", raising=False)
    assert env_positive_int("REPRO_ATTACK_BUDGET", 256) == 256
    monkeypatch.setenv("REPRO_ATTACK_BUDGET", "")
    assert env_positive_int("REPRO_ATTACK_BUDGET", 256) == 256
    monkeypatch.setenv("REPRO_ATTACK_BUDGET", "64")
    assert env_positive_int("REPRO_ATTACK_BUDGET", 256) == 64
    for bad in ("0", "-5"):
        monkeypatch.setenv("REPRO_ATTACK_BUDGET", bad)
        with pytest.raises(ValueError, match="must be > 0"):
            env_positive_int("REPRO_ATTACK_BUDGET", 256)


def test_env_attack_engine_selection(monkeypatch):
    """REPRO_ATTACK_ENGINE: validated against the registry, unset = None."""
    from repro.adversary import default_scenario_names, engine_names

    monkeypatch.delenv("REPRO_ATTACK_ENGINE", raising=False)
    assert env_name("REPRO_ATTACK_ENGINE", engine_names()) is None
    monkeypatch.setenv("REPRO_ATTACK_ENGINE", "")
    assert env_name("REPRO_ATTACK_ENGINE", engine_names()) is None
    monkeypatch.setenv("REPRO_ATTACK_ENGINE", "netflow")
    assert env_name("REPRO_ATTACK_ENGINE", engine_names()) == "netflow"
    names = default_scenario_names()
    assert "random" in names  # the floor always rides along
    assert all(n in ("netflow", "netflow-bare", "random") for n in names)
    monkeypatch.setenv("REPRO_ATTACK_ENGINE", "quantum")
    with pytest.raises(ValueError, match="is not one of"):
        env_name("REPRO_ATTACK_ENGINE", engine_names())
    with pytest.raises(ValueError):
        default_scenario_names()
