"""Unit tests for the Circuit data structure."""

import pytest

from repro.netlist.circuit import Circuit, Gate, NetlistError
from repro.netlist.gate_types import GateType
from tests.conftest import tiny_mux_circuit


def test_add_and_lookup():
    circuit = Circuit("t")
    circuit.add_input("a")
    circuit.add("z", GateType.NOT, ("a",))
    circuit.add_output("z")
    assert len(circuit) == 2
    assert "z" in circuit
    assert circuit.gate("z").gate_type is GateType.NOT
    assert circuit.inputs == ["a"]
    assert circuit.outputs == ["z"]


def test_duplicate_driver_rejected():
    circuit = Circuit("t")
    circuit.add_input("a")
    with pytest.raises(NetlistError):
        circuit.add_input("a")


def test_duplicate_output_rejected():
    circuit = tiny_mux_circuit()
    with pytest.raises(NetlistError):
        circuit.add_output("z")


def test_missing_driver_raises_on_fanout_map():
    circuit = Circuit("t")
    circuit.add_input("a")
    circuit.add("z", GateType.AND, ("a", "ghost"))
    with pytest.raises(NetlistError):
        circuit.fanout_map()


def test_topological_order_respects_dependencies(c17_circuit):
    order = c17_circuit.topological_order()
    position = {net: i for i, net in enumerate(order)}
    for gate in c17_circuit:
        for fin in gate.fanin:
            assert position[fin] < position[gate.name]


def test_combinational_cycle_detected():
    circuit = Circuit("loop")
    circuit.add_input("a")
    circuit.add("x", GateType.AND, ("a", "y"))
    circuit.add("y", GateType.OR, ("x", "a"))
    circuit.add_output("y")
    with pytest.raises(NetlistError):
        circuit.topological_order()


def test_dff_feedback_is_not_a_cycle():
    circuit = Circuit("seq")
    circuit.add_input("a")
    circuit.add("q", GateType.DFF, ("d",))
    circuit.add("d", GateType.XOR, ("a", "q"))
    circuit.add_output("d")
    order = circuit.topological_order()
    assert set(order) == {"a", "q", "d"}
    assert circuit.is_sequential


def test_depth_and_levels(c17_circuit):
    levels = c17_circuit.levels()
    assert levels["N1"] == 0
    assert levels["N10"] == 1
    assert levels["N22"] == 3
    assert c17_circuit.depth() == 3


def test_levels_cache_invalidation(c17_circuit):
    first = c17_circuit.levels()
    c17_circuit.add("extra", GateType.NOT, ("N22",))
    second = c17_circuit.levels()
    assert "extra" in second and "extra" not in first


def test_transitive_fanin_and_fanout(c17_circuit):
    cone = c17_circuit.transitive_fanin(["N22"])
    assert cone == {"N22", "N10", "N16", "N1", "N3", "N2", "N11", "N6"}
    reach = c17_circuit.transitive_fanout(["N11"])
    assert reach == {"N11", "N16", "N19", "N22", "N23"}


def test_support(c17_circuit):
    assert set(c17_circuit.support(["N22"])) == {"N1", "N2", "N3", "N6"}


def test_extract_cone(c17_circuit):
    cone = c17_circuit.extract_cone(["N22"])
    assert set(cone.inputs) == {"N1", "N2", "N3", "N6"}
    assert cone.outputs == ["N22"]
    assert cone.num_logic_gates() == 4


def test_combinational_core_interface(sequential_circuit):
    core = sequential_circuit.combinational_core()
    assert not core.is_sequential
    dffs = sequential_circuit.dffs
    for q in dffs:
        assert core.gates[q].is_input
    # every DFF data net is observable in the core
    for q in dffs:
        d_net = sequential_circuit.gates[q].fanin[0]
        assert d_net in core.outputs


def test_copy_independence(c17_circuit):
    dup = c17_circuit.copy("dup")
    dup.add("n", GateType.NOT, ("N22",))
    assert "n" not in c17_circuit.gates
    assert dup.name == "dup"


def test_renamed(c17_circuit):
    renamed = c17_circuit.renamed(lambda n: f"x_{n}")
    assert "x_N22" in renamed.outputs
    assert renamed.gates["x_N10"].fanin == ("x_N1", "x_N3")


def test_fresh_name(c17_circuit):
    assert c17_circuit.fresh_name("brandnew") == "brandnew"
    taken = c17_circuit.fresh_name("N10")
    assert taken != "N10" and taken not in c17_circuit.gates


def test_stats(c17_circuit):
    stats = c17_circuit.stats()
    assert stats.num_inputs == 5
    assert stats.num_outputs == 2
    assert stats.num_gates == 6
    assert stats.type_histogram["nand"] == 6


def test_gate_helpers():
    gate = Gate("g", GateType.NAND, ("a", "b"))
    assert gate.with_type(GateType.AND).gate_type is GateType.AND
    assert gate.with_fanin(("x", "y")).fanin == ("x", "y")
    assert not gate.is_tie and not gate.is_dff and gate.is_combinational


def test_gate_arity_validation():
    with pytest.raises(NetlistError):
        Gate("g", GateType.NOT, ("a", "b"))
    with pytest.raises(NetlistError):
        Gate("g", GateType.TIEHI, ("a",))
    with pytest.raises(NetlistError):
        Gate("", GateType.AND, ("a", "b"))


def test_remove_and_replace(c17_circuit):
    gate = c17_circuit.gates["N22"]
    c17_circuit.replace_gate(gate.with_type(GateType.AND))
    assert c17_circuit.gates["N22"].gate_type is GateType.AND
    c17_circuit.remove_gate("N22")
    assert "N22" not in c17_circuit.gates
    with pytest.raises(NetlistError):
        c17_circuit.remove_gate("N22")
