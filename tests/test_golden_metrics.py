"""Golden-metric regression: pinned paper numbers for one smoke cell.

One reduced Table I / Table II cell (the CI smoke campaign's ``b14`` at
split layer M4, 16 key bits, 2048 HD patterns) is computed end to end —
generate, lock, layout, attack, metrics — and every reported number is
pinned **exactly**.  Simulation-engine swaps (big-int vs compiled) or
refactors of the metric pipeline can never silently shift paper values:
any drift fails here first.

The values were cross-checked against the pre-compiled-engine seed
implementation; both engines reproduce them bit-for-bit.
"""

import random

import pytest

from repro.atpg.fault_sim import fault_coverage
from repro.atpg.faults import internal_faults
from repro.runner.profiles import smoke_campaign
from repro.runner.stages import cell_run, locked_design
from repro.sim.bitparallel import random_words

#: Exact golden values of the smoke cell (b14, M4, 16 key bits).
GOLDEN_HD_PERCENT = 44.66732838114754
GOLDEN_OER_PERCENT = 100.0
GOLDEN_HD_PATTERNS = 2048
GOLDEN_REGULAR_CCR = 16.285714285714285
GOLDEN_KEY_PHYSICAL_CCR = 0.0
GOLDEN_KEY_LOGICAL_CCR = 43.75
GOLDEN_REGULAR_BROKEN = 350
GOLDEN_KEY_BROKEN = 16
GOLDEN_FAULT_COVERAGE = 0.7063106796116505
GOLDEN_FAULT_UNIVERSE = 412
GOLDEN_FAULT_UNDETECTED = 121


@pytest.fixture(scope="module")
def smoke_artifacts():
    cell = list(smoke_campaign().cells())[0]
    design = locked_design(cell, cache=None)
    run = cell_run(cell, cache=None, design=design)
    return design, run


@pytest.mark.parametrize("engine", ["bigint", "compiled"])
def test_golden_hd_oer_and_ccr(smoke_artifacts, engine, monkeypatch):
    # The lock/layout/attack artefacts are shared; only the metric
    # computation re-runs per engine (HD/OER is the simulation-bound
    # metric, which is exactly what an engine swap could shift).
    from repro.metrics.hd_oer import compute_hd_oer

    design, run = smoke_artifacts
    assert run.hd_oer.hd_percent == GOLDEN_HD_PERCENT
    assert run.hd_oer.oer_percent == GOLDEN_OER_PERCENT
    assert run.hd_oer.patterns == GOLDEN_HD_PATTERNS
    assert run.ccr.regular_ccr == GOLDEN_REGULAR_CCR
    assert run.ccr.key_physical_ccr == GOLDEN_KEY_PHYSICAL_CCR
    assert run.ccr.key_logical_ccr == GOLDEN_KEY_LOGICAL_CCR
    assert run.ccr.regular_broken == GOLDEN_REGULAR_BROKEN
    assert run.ccr.key_broken == GOLDEN_KEY_BROKEN

    monkeypatch.setenv("REPRO_SIM_ENGINE", engine)
    cell = list(smoke_campaign().cells())[0]
    rerun = cell_run(cell, cache=None, design=design)
    assert rerun.hd_oer.hd_percent == GOLDEN_HD_PERCENT
    assert rerun.hd_oer.oer_percent == GOLDEN_OER_PERCENT
    # compute_hd_oer directly as well, to pin the metric entry point.
    report = compute_hd_oer(
        design.core, design.core, patterns=512, seed=5
    )
    assert report.hd_percent == 0.0
    assert report.oer_percent == 0.0


@pytest.mark.parametrize("engine", ["bigint", "compiled"])
def test_golden_fault_coverage(smoke_artifacts, engine, monkeypatch):
    design, _run = smoke_artifacts
    monkeypatch.setenv("REPRO_SIM_ENGINE", engine)
    core = design.core
    faults = internal_faults(core)
    assert len(faults) == GOLDEN_FAULT_UNIVERSE
    words = random_words(core.inputs, 1024, random.Random(99))
    ratio, undetected = fault_coverage(core, faults, words, 1024)
    assert ratio == GOLDEN_FAULT_COVERAGE
    assert len(undetected) == GOLDEN_FAULT_UNDETECTED


def test_golden_lock_report(smoke_artifacts):
    design, _run = smoke_artifacts
    assert design.report.atpg_key_bits == 8
    assert design.report.random_key_bits == 8
    assert design.report.area_original == pytest.approx(314.944, abs=1e-9)
    assert design.report.area_locked == pytest.approx(287.546, abs=1e-9)
    assert design.report.selected_faults == [
        "b14_g154/sa1",
        "b14_g183/sa0",
        "b14_g171/sa0",
    ]
    assert design.report.free_faults == ["b14_p1_root/sa0"]
