"""Differential tests: compiled vectorized engine vs the big-int engine.

The compiled engine must be a drop-in replacement — every word of every
net bit-identical to ``simulate_words_bigint`` across gate types,
overrides, non-multiple-of-64 pattern counts, and degenerate circuits.
The consumer-level paths (HD/OER, fault coverage, dispatcher) must be
engine-independent as well.
"""

import pickle
import random

import pytest

from repro.atpg.fault_sim import fault_coverage
from repro.atpg.faults import internal_faults
from repro.benchgen import GeneratorConfig, c17, generate_random_circuit
from repro.metrics.hd_oer import compute_hd_oer
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.sim.bitparallel import (
    exhaustive_words,
    output_words,
    random_words,
    simulate_patterns,
    simulate_words,
    simulate_words_bigint,
)
from repro.sim.compiled import (
    CompiledCircuit,
    compile_circuit,
    int_to_lanes,
    lanes_to_int,
    num_words,
    popcount,
    popcount_rows,
    set_lane_indices,
)

LANE_COUNTS = (1, 63, 64, 65, 257, 1000)


def random_circuit(seed: int, gates: int = 220) -> Circuit:
    config = GeneratorConfig(
        num_inputs=10, num_outputs=5, num_gates=gates, xor_fraction=0.15
    )
    return generate_random_circuit(config, seed=seed, name=f"diff{seed}")


def assert_engines_agree(circuit, words, lanes, overrides=None):
    reference = simulate_words_bigint(circuit, words, lanes, overrides=overrides)
    compiled = compile_circuit(circuit).simulate(words, lanes, overrides=overrides)
    assert reference == compiled


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("lanes", LANE_COUNTS)
def test_random_logic_differential(seed, lanes):
    circuit = random_circuit(seed)
    rng = random.Random(seed * 1000 + lanes)
    words = random_words(circuit.inputs, lanes, rng)
    assert_engines_agree(circuit, words, lanes)


@pytest.mark.parametrize("seed", range(4))
def test_differential_with_overrides(seed):
    circuit = random_circuit(seed)
    lanes = 300  # deliberately not a multiple of 64
    rng = random.Random(seed)
    words = random_words(circuit.inputs, lanes, rng)
    nets = [n for n in circuit.gates if not circuit.gates[n].is_input]
    overrides = {
        nets[len(nets) // 3]: rng.getrandbits(lanes),
        nets[2 * len(nets) // 3]: 0,
        circuit.inputs[0]: (1 << lanes) - 1,  # forced input (key tying)
        "no-such-net": 12345,  # silently ignored by both engines
    }
    assert_engines_agree(circuit, words, lanes, overrides=overrides)


def test_differential_exhaustive_c17():
    circuit = c17()
    words, lanes = exhaustive_words(circuit.inputs)
    assert_engines_agree(circuit, words, lanes)
    assert_engines_agree(circuit, words, lanes, overrides={"N10": 0})


def test_every_gate_type_and_degenerate_arities():
    circuit = Circuit("alltypes")
    for name in ("a", "b", "c"):
        circuit.add_input(name)
    circuit.add("hi", GateType.TIEHI)
    circuit.add("lo", GateType.TIELO)
    two_input = [
        GateType.AND, GateType.NAND, GateType.OR,
        GateType.NOR, GateType.XOR, GateType.XNOR,
    ]
    for i, gate_type in enumerate(two_input):
        circuit.add(f"g{i}", gate_type, ("a", "b"))
        circuit.add(f"w{i}", gate_type, ("a", "b", "c"))  # 3-input
        circuit.add(f"d{i}", gate_type, ("c",))  # degenerate 1-input
    circuit.add("n0", GateType.NOT, ("g0",))
    circuit.add("n1", GateType.BUF, ("g1",))
    circuit.add("mix", GateType.NAND, ("hi", "lo", "n0", "w3"))
    for net in list(circuit.gates):
        if not circuit.gates[net].is_input:
            circuit.add_output(net)
    words, lanes = exhaustive_words(circuit.inputs)
    assert_engines_agree(circuit, words, lanes)


def test_constant_and_pass_through_circuits():
    circuit = Circuit("const")
    circuit.add_input("x")
    circuit.add("hi", GateType.TIEHI)
    circuit.add("lo", GateType.TIELO)
    circuit.add("keep", GateType.BUF, ("x",))
    for net in ("hi", "lo", "keep", "x"):
        circuit.add_output(net)
    for lanes in (1, 65, 130):
        words = {"x": random.Random(lanes).getrandbits(lanes)}
        assert_engines_agree(circuit, words, lanes)


def test_compiled_rejects_sequential(sequential_circuit):
    with pytest.raises(ValueError):
        CompiledCircuit(sequential_circuit)


def test_compiled_missing_stimulus_message(c17_circuit):
    engine = compile_circuit(c17_circuit)
    with pytest.raises(KeyError, match="no stimulus for primary input"):
        engine.simulate({"N1": 0}, 8)


def test_simulate_pair_matches_two_single_sweeps():
    circuit = random_circuit(3)
    lanes = 500
    words = random_words(circuit.inputs, lanes, random.Random(9))
    target = [n for n in circuit.gates if not circuit.gates[n].is_input][5]
    engine = compile_circuit(circuit)
    good, faulty = engine.simulate_pair(words, lanes, {target: 0})
    assert good == simulate_words_bigint(circuit, words, lanes)
    assert faulty == simulate_words_bigint(
        circuit, words, lanes, overrides={target: 0}
    )


def test_batch_override_columns_match_bigint():
    circuit = random_circuit(5)
    lanes = 130
    words = random_words(circuit.inputs, lanes, random.Random(5))
    engine = compile_circuit(circuit)
    nets = [n for n in circuit.gates if not circuit.gates[n].is_input]
    scenarios = [None, {nets[0]: 0}, {nets[1]: (1 << lanes) - 1}, {nets[2]: 7}]
    buf = engine.simulate_batch_array(words, lanes, scenarios)
    for column, overrides in enumerate(scenarios):
        reference = simulate_words_bigint(
            circuit, words, lanes, overrides=overrides
        )
        for net, slot in engine.index.items():
            assert lanes_to_int(buf[slot, column]) == reference[net], (
                column,
                net,
            )


def test_empty_override_batch_returns_empty_buffer():
    circuit = random_circuit(6)
    words = random_words(circuit.inputs, 128, random.Random(6))
    buf = compile_circuit(circuit).simulate_batch_array(words, 128, [])
    assert buf.shape == (len(circuit.gates), 0, 2)


def test_wide_batch_blocked_sweep_differential():
    """Pattern counts past BLOCK_WORDS exercise the blocked code path."""
    circuit = random_circuit(7, gates=120)
    lanes = 40_000  # 625 words > BLOCK_WORDS
    words = random_words(circuit.inputs, lanes, random.Random(7))
    assert_engines_agree(circuit, words, lanes)


def test_fault_coverage_engine_independent():
    circuit = random_circuit(11, gates=260)
    faults = internal_faults(circuit)
    words = random_words(circuit.inputs, 1024, random.Random(2))
    results = {}
    for engine in ("bigint", "compiled"):
        import os

        os.environ["REPRO_SIM_ENGINE"] = engine
        try:
            results[engine] = fault_coverage(circuit, faults, words, 1024)
        finally:
            del os.environ["REPRO_SIM_ENGINE"]
    assert results["bigint"][0] == results["compiled"][0]
    assert results["bigint"][1] == results["compiled"][1]


def test_hd_oer_engine_independent(monkeypatch):
    config = GeneratorConfig(num_inputs=10, num_outputs=4, num_gates=200)
    original = generate_random_circuit(config, seed=21, name="m")
    recovered = generate_random_circuit(config, seed=22, name="m")
    reports = {}
    for engine in ("bigint", "compiled"):
        monkeypatch.setenv("REPRO_SIM_ENGINE", engine)
        reports[engine] = compute_hd_oer(
            original, recovered, patterns=3000, seed=5
        )
    assert reports["bigint"] == reports["compiled"]


def test_dispatcher_respects_engine_knob(monkeypatch):
    circuit = random_circuit(1)
    words = random_words(circuit.inputs, 256, random.Random(1))
    outputs = {}
    for engine in ("bigint", "compiled", "auto"):
        monkeypatch.setenv("REPRO_SIM_ENGINE", engine)
        outputs[engine] = output_words(circuit, words, 256)
    assert outputs["bigint"] == outputs["compiled"] == outputs["auto"]
    monkeypatch.setenv("REPRO_SIM_ENGINE", "not-an-engine")
    with pytest.raises(ValueError):
        simulate_words(circuit, words, 256)


def test_compile_cache_reuses_and_invalidates():
    circuit = random_circuit(2)
    first = compile_circuit(circuit)
    assert compile_circuit(circuit) is first
    victim = next(
        n for n in circuit.gates if circuit.gates[n].gate_type is GateType.NAND
    )
    circuit.replace_gate(circuit.gates[victim].with_type(GateType.AND))
    second = compile_circuit(circuit)
    assert second is not first
    words = random_words(circuit.inputs, 96, random.Random(0))
    assert second.simulate(words, 96) == simulate_words_bigint(
        circuit, words, 96
    )


def test_circuit_pickle_drops_caches_and_still_simulates():
    circuit = random_circuit(4)
    compile_circuit(circuit)  # populate the cache
    clone = pickle.loads(pickle.dumps(circuit))
    assert clone._compiled_cache is None
    assert clone._topo_cache is None
    words = random_words(circuit.inputs, 77, random.Random(4))
    assert simulate_words(clone, words, 77) == simulate_words_bigint(
        circuit, words, 77
    )


def test_simulate_patterns_one_pass_unpacking(c17_circuit):
    rng = random.Random(8)
    patterns = [
        [rng.randrange(2) for _ in c17_circuit.inputs] for _ in range(70)
    ]
    rows = simulate_patterns(c17_circuit, patterns)
    words = simulate_words_bigint(
        c17_circuit,
        {
            net: sum(
                patterns[p][i] << p for p in range(len(patterns))
            )
            for i, net in enumerate(c17_circuit.inputs)
        },
        len(patterns),
    )
    for lane, row in enumerate(rows):
        expected = [
            (words[out] >> lane) & 1 for out in c17_circuit.outputs
        ]
        assert row == expected


def test_lane_helpers_roundtrip():
    rng = random.Random(0)
    for lanes in (1, 64, 70, 500):
        word = rng.getrandbits(lanes)
        arr = int_to_lanes(word, lanes)
        assert arr.shape == (num_words(lanes),)
        assert lanes_to_int(arr) == word
        assert popcount(arr) == word.bit_count()
        assert set_lane_indices(arr).tolist() == [
            i for i in range(lanes) if (word >> i) & 1
        ]
    two = int_to_lanes(0b1011, 4).reshape(1, 1)
    assert popcount_rows(two).tolist() == [3]
