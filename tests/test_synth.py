"""Re-synthesis tests: constant propagation, simplification, strash."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import StuckAtFault, internal_faults
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.netlist.transforms import count_area
from repro.sim.bitparallel import functions_equal_exhaustive, output_words, random_words
from repro.synth import (
    constant_nets,
    inject_stuck_at,
    propagate_constants,
    resynthesize,
    simplify,
    strash,
)
from tests.conftest import build_random_circuit, tiny_mux_circuit


def _equal_on_random(a, b, patterns=256, seed=0):
    rng = random.Random(seed)
    words = random_words(a.inputs, patterns, rng)
    oa = output_words(a, words, patterns)
    ob = output_words(b, words, patterns)
    return all(oa[x] == ob[y] for x, y in zip(a.outputs, b.outputs))


def test_constant_nets_reports_ties():
    circuit = tiny_mux_circuit()
    circuit.add("one", GateType.TIEHI)
    circuit.add("zero", GateType.TIELO)
    constants = constant_nets(circuit)
    assert constants == {"one": 1, "zero": 0}


def test_constprop_and_with_zero_folds():
    circuit = Circuit("t")
    circuit.add_input("a")
    circuit.add("zero", GateType.TIELO)
    circuit.add("z", GateType.AND, ("a", "zero"))
    circuit.add_output("z")
    propagate_constants(circuit)
    assert circuit.gates["z"].gate_type is GateType.TIELO


def test_constprop_nand_with_zero_is_one():
    circuit = Circuit("t")
    circuit.add_input("a")
    circuit.add("zero", GateType.TIELO)
    circuit.add("z", GateType.NAND, ("a", "zero"))
    circuit.add_output("z")
    propagate_constants(circuit)
    assert circuit.gates["z"].gate_type is GateType.TIEHI


def test_constprop_drops_noncontrolling_inputs():
    circuit = Circuit("t")
    circuit.add_input("a")
    circuit.add_input("b")
    circuit.add("one", GateType.TIEHI)
    circuit.add("z", GateType.AND, ("a", "b", "one"))
    circuit.add_output("z")
    propagate_constants(circuit)
    assert circuit.gates["z"].fanin == ("a", "b")


def test_constprop_xor_absorbs_constants():
    circuit = Circuit("t")
    circuit.add_input("a")
    circuit.add("one", GateType.TIEHI)
    circuit.add("z", GateType.XOR, ("a", "one"))
    circuit.add_output("z")
    propagate_constants(circuit)
    assert circuit.gates["z"].gate_type is GateType.NOT


def test_constprop_respects_protected():
    circuit = Circuit("t")
    circuit.add_input("a")
    circuit.add("key", GateType.TIELO)
    circuit.add("kg", GateType.XOR, ("a", "key"))
    circuit.add_output("kg")
    edits = propagate_constants(circuit, protected={"key", "kg"})
    assert edits == 0
    assert circuit.gates["kg"].gate_type is GateType.XOR


def test_simplify_duplicate_fanin():
    circuit = Circuit("t")
    circuit.add_input("a")
    circuit.add("z", GateType.AND, ("a", "a"))
    circuit.add_output("z")
    simplify(circuit)
    # AND(a,a) -> BUF(a) -> collapsed to direct connection or kept as BUF
    assert circuit.outputs[0] in ("a", "z")


def test_simplify_xor_cancellation():
    circuit = Circuit("t")
    circuit.add_input("a")
    circuit.add("z", GateType.XOR, ("a", "a"))
    circuit.add_output("z")
    simplify(circuit)
    assert circuit.gates[circuit.outputs[0]].gate_type is GateType.TIELO


def test_simplify_double_inverter():
    circuit = Circuit("t")
    circuit.add_input("a")
    circuit.add("n1", GateType.NOT, ("a",))
    circuit.add("n2", GateType.NOT, ("n1",))
    circuit.add("z", GateType.AND, ("n2", "a"))
    circuit.add_output("z")
    reference = circuit.copy("ref")
    simplify(circuit)
    assert functions_equal_exhaustive(circuit, reference)
    assert circuit.gates["z"].fanin == ("a", "a") or "n2" not in circuit.gates


def test_strash_merges_identical_gates():
    circuit = Circuit("t")
    circuit.add_input("a")
    circuit.add_input("b")
    circuit.add("g1", GateType.AND, ("a", "b"))
    circuit.add("g2", GateType.AND, ("b", "a"))  # commutative duplicate
    circuit.add("z", GateType.OR, ("g1", "g2"))
    circuit.add_output("z")
    merged = strash(circuit)
    assert merged == 1
    assert ("g1" in circuit.gates) != ("g2" in circuit.gates)


def test_strash_respects_protected_ties():
    circuit = Circuit("t")
    circuit.add_input("a")
    circuit.add("k0", GateType.TIEHI)
    circuit.add("k1", GateType.TIEHI)
    circuit.add("x0", GateType.XOR, ("a", "k0"))
    circuit.add("x1", GateType.XNOR, ("a", "k1"))
    circuit.add("z", GateType.AND, ("x0", "x1"))
    circuit.add_output("z")
    merged = strash(circuit, protected={"k0", "k1", "x0", "x1"})
    assert merged == 0
    assert "k0" in circuit.gates and "k1" in circuit.gates


def test_strash_preserves_outputs():
    circuit = Circuit("t")
    circuit.add_input("a")
    circuit.add("g1", GateType.NOT, ("a",))
    circuit.add("g2", GateType.NOT, ("a",))
    circuit.add_output("g1")
    circuit.add_output("g2")
    merged = strash(circuit)
    assert merged == 0  # both drive outputs: merging would alias them
    assert circuit.outputs == ["g1", "g2"]


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 400))
def test_resynthesize_preserves_function(seed):
    """Property: full re-synthesis never changes the circuit function."""
    circuit = build_random_circuit(seed, num_inputs=7, num_gates=45)
    reference = circuit.copy("ref")
    resynthesize(circuit)
    assert _equal_on_random(reference, circuit, seed=seed)


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 200))
def test_fault_injection_then_resynth_shrinks(seed):
    """Property: injecting a stuck-at never grows the netlist."""
    circuit = build_random_circuit(seed, num_inputs=7, num_gates=50)
    resynthesize(circuit)
    faults = internal_faults(circuit)
    if not faults:
        return
    fault = random.Random(seed).choice(faults)
    injected = inject_stuck_at(circuit, fault)
    report = resynthesize(injected)
    assert report.area_after <= report.area_before + 1e-9


def test_inject_stuck_at_ties_the_net(c17_circuit):
    faulty = inject_stuck_at(c17_circuit, StuckAtFault("N10", 1))
    assert faulty.gates["N10"].gate_type is GateType.TIEHI
    assert c17_circuit.gates["N10"].gate_type is GateType.NAND  # copy


def test_resynth_report_area_accounting(mid_random_circuit):
    before = count_area(mid_random_circuit)
    report = resynthesize(mid_random_circuit)
    assert report.area_before == pytest.approx(before)
    assert report.area_after == pytest.approx(count_area(mid_random_circuit))
