"""Simulation engine tests: bit-parallel vs event-driven differential,
exhaustive enumeration, sequential stepping, activity estimation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.sim.bitparallel import (
    count_differing_lanes,
    exhaustive_words,
    functions_equal_exhaustive,
    mask_for,
    output_words,
    pack_patterns,
    random_words,
    signal_probabilities,
    simulate_patterns,
    simulate_words,
    toggle_activity,
    unpack_word,
)
from repro.sim.event_sim import evaluate_outputs, simulate_event_driven
from repro.sim.patterns import (
    exhaustive_patterns,
    int_to_pattern,
    pattern_to_int,
    random_patterns,
    walking_ones,
)
from repro.sim.sequential import SequentialSimulator
from tests.conftest import build_random_circuit, tiny_mux_circuit


def test_c17_known_vectors(c17_circuit):
    rows = simulate_patterns(
        c17_circuit, [[0, 0, 0, 0, 0], [1, 1, 1, 1, 1], [1, 0, 1, 0, 1]]
    )
    assert rows == [[0, 0], [1, 0], [1, 1]]


def test_mux_behaviour():
    mux = tiny_mux_circuit()
    # order of inputs is a, b, s
    rows = simulate_patterns(
        mux, [[1, 0, 1], [1, 0, 0], [0, 1, 0], [0, 1, 1]]
    )
    assert [r[0] for r in rows] == [1, 0, 1, 0]


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2000), st.integers(0, 2**16 - 1))
def test_engines_agree(seed, stimulus):
    """Property: bit-parallel and event-driven engines always agree."""
    circuit = build_random_circuit(seed % 50, num_inputs=6, num_gates=30)
    assignment = {
        net: (stimulus >> i) & 1 for i, net in enumerate(circuit.inputs)
    }
    event = evaluate_outputs(circuit, assignment)
    words = {net: value for net, value in assignment.items()}
    parallel = output_words(circuit, words, 1)
    for net in circuit.outputs:
        assert parallel[net] & 1 == event[net]


def test_overrides_inject_faults(c17_circuit):
    words, lanes = exhaustive_words(c17_circuit.inputs)
    good = output_words(c17_circuit, words, lanes)
    stuck = output_words(
        c17_circuit, words, lanes, overrides={"N10": 0}
    )
    assert any(good[o] != stuck[o] for o in c17_circuit.outputs)


def test_exhaustive_words_enumerate_all():
    words, lanes = exhaustive_words(["a", "b", "c"])
    assert lanes == 8
    seen = set()
    for lane in range(8):
        bits = tuple((words[n] >> lane) & 1 for n in ["a", "b", "c"])
        seen.add(bits)
    assert len(seen) == 8


def test_pack_unpack_roundtrip():
    patterns = [[0, 1], [1, 1], [1, 0]]
    words = pack_patterns(patterns, ["x", "y"])
    assert unpack_word(words["x"], 3) == [0, 1, 1]
    assert unpack_word(words["y"], 3) == [1, 1, 0]


def test_pack_rejects_width_mismatch():
    with pytest.raises(ValueError):
        pack_patterns([[0, 1, 1]], ["x", "y"])


def test_mask_and_popcount_helpers():
    assert mask_for(5) == 0b11111
    assert count_differing_lanes(0b1010, 0b0110) == 2


def test_random_words_deterministic():
    rng1, rng2 = random.Random(9), random.Random(9)
    assert random_words(["a"], 64, rng1) == random_words(["a"], 64, rng2)


def test_functions_equal_exhaustive(c17_circuit):
    assert functions_equal_exhaustive(c17_circuit, c17_circuit.copy())
    mutated = c17_circuit.copy("mut")
    mutated.replace_gate(mutated.gates["N16"].with_type(GateType.AND))
    assert not functions_equal_exhaustive(c17_circuit, mutated)


def test_signal_probabilities_bounds(small_random_circuit):
    probs = signal_probabilities(small_random_circuit, 256, seed=1)
    assert all(0.0 <= p <= 1.0 for p in probs.values())
    # TIE-free circuit: inputs should be near 0.5
    for net in small_random_circuit.inputs:
        assert 0.3 < probs[net] < 0.7


def test_toggle_activity_range(small_random_circuit):
    activity = toggle_activity(small_random_circuit, 256, seed=2)
    assert all(0.0 <= a <= 0.5 for a in activity.values())


def test_sequential_simulator_latches():
    # q toggles every cycle: d = NOT q
    circuit = Circuit("tff")
    circuit.add_input("en")
    circuit.add("q", GateType.DFF, ("d",))
    circuit.add("d", GateType.NOT, ("q",))
    circuit.add("z", GateType.AND, ("q", "en"))
    circuit.add_output("z")
    sim = SequentialSimulator(circuit, num_patterns=1)
    outs = [sim.step({"en": 1})[ "z"] & 1 for _ in range(4)]
    assert outs == [0, 1, 0, 1]


def test_sequential_reset_value():
    circuit = Circuit("hold")
    circuit.add_input("x")
    circuit.add("q", GateType.DFF, ("q2",))
    circuit.add("q2", GateType.BUF, ("q",))
    circuit.add_output("q2")
    sim = SequentialSimulator(circuit, num_patterns=1, reset_value=1)
    assert sim.step({"x": 0})["q2"] & 1 == 1


def test_pattern_helpers():
    assert pattern_to_int((1, 0, 1)) == 0b101
    assert int_to_pattern(0b101, 3) == (1, 0, 1)
    assert len(list(exhaustive_patterns(3))) == 8
    ones = walking_ones(4)
    assert len(ones) == 5 and sum(ones[2]) == 1
    rng = random.Random(0)
    pats = random_patterns(5, 7, rng)
    assert len(pats) == 7 and all(len(p) == 5 for p in pats)


def test_event_sim_rejects_sequential(sequential_circuit):
    with pytest.raises(ValueError):
        simulate_event_driven(sequential_circuit, {})


def test_simulate_words_rejects_sequential(sequential_circuit):
    with pytest.raises(ValueError):
        simulate_words(sequential_circuit, {}, 1)


def test_missing_stimulus_raises(c17_circuit):
    with pytest.raises(KeyError):
        output_words(c17_circuit, {"N1": 0}, 1)
