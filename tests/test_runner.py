"""Campaign runner: spec expansion, parity, caching, CLI.

The two load-bearing guarantees:

* **parity** — parallel execution produces bit-identical metrics to
  serial execution (cells are pure functions of their spec);
* **invalidation** — the on-disk cache is keyed by the full spec, so
  changing any field (seed, key bits, split layer, scale, budgets)
  recomputes instead of serving stale artifacts.
"""

from __future__ import annotations

import pytest

from repro.runner import (
    BenchRun,
    CampaignSpec,
    CellSpec,
    cell_run,
    execute_cell,
    parse_benchmark,
    run_campaign,
    run_cost_campaign,
    smoke_campaign,
)
from repro.runner.cli import main as cli_main
from repro.runner.stages import lock_payload, run_payload
from repro.utils.artifact_cache import ArtifactCache, spec_key

#: A tiny grid: every stage exercised, seconds of runtime.
TINY = CampaignSpec(
    benchmarks=("b14", "random:i8-o4-g60"),
    split_layers=(4, 6),
    key_bits=(12,),
    scale=0.03,
    hd_patterns=512,
    max_candidates=60,
)


@pytest.fixture(scope="module")
def serial_result():
    return run_campaign(TINY, workers=1, use_cache=False)


# ---------------------------------------------------------------------------
# Spec expansion


def test_spec_expands_full_grid():
    cells = TINY.cells()
    assert len(cells) == 4
    assert [c.cell_id for c in cells] == [
        "b14/M4/k12",
        "b14/M6/k12",
        "random:i8-o4-g60/M4/k12",
        "random:i8-o4-g60/M6/k12",
    ]
    for cell in cells:
        assert cell.hd_patterns == 512
        assert cell.scale == 0.03


def test_spec_rejects_unknown_benchmark():
    with pytest.raises(KeyError):
        CampaignSpec(benchmarks=("b99",))
    with pytest.raises(ValueError):
        CampaignSpec(benchmarks=("random:nonsense",))


def test_random_descriptor_round_trip():
    config = parse_benchmark("random:i16-o8-g240-d5")
    assert (config.num_inputs, config.num_outputs) == (16, 8)
    assert (config.num_gates, config.num_dffs) == (240, 5)
    assert parse_benchmark("b14") is None


def test_cell_payload_round_trip():
    cell = TINY.cells()[0]
    clone = CellSpec.from_payload(cell.to_payload())
    assert clone == cell


# ---------------------------------------------------------------------------
# Parity: serial == parallel, bit for bit


def test_serial_campaign_metrics_sane(serial_result):
    assert len(serial_result.cells) == 4
    for result in serial_result.cells:
        run = result.run
        assert isinstance(run, BenchRun)
        assert 0.0 <= run.ccr.key_logical_ccr <= 100.0
        assert run.hd_oer.patterns == 512


def test_parallel_matches_serial_bit_identical(serial_result):
    parallel = run_campaign(TINY, workers=2, use_cache=False)
    assert parallel.runs() == serial_result.runs()


def test_cached_rerun_matches_and_hits(tmp_path, serial_result):
    first = run_campaign(TINY, workers=1, cache_dir=tmp_path)
    assert first.runs() == serial_result.runs()
    second = run_campaign(TINY, workers=1, cache_dir=tmp_path)
    assert second.runs() == serial_result.runs()
    stats = second.cache_stats()
    assert stats.misses == 0
    assert stats.stores == 0
    # The fused path (the default) probes every stage cache, so total
    # hits exceed the cell count; the run stage must hit once per cell.
    assert stats.stages["run"].hits == len(TINY.cells())


# ---------------------------------------------------------------------------
# Cache keying and invalidation


def test_cache_shares_lock_stage_across_splits(tmp_path):
    cells = TINY.cells()
    assert lock_payload(cells[0]) == lock_payload(cells[1])
    assert run_payload(cells[0]) != run_payload(cells[1])
    execute_cell(cells[0], cache_dir=tmp_path)
    cache = ArtifactCache(tmp_path)
    assert cache.contains("lock", lock_payload(cells[1]))
    assert not cache.contains("run", run_payload(cells[1]))


@pytest.mark.parametrize(
    "field, value",
    [
        ("seed", 2020),
        ("key_bits", 14),
        ("split_layer", 5),
        ("scale", 0.04),
        ("hd_patterns", 256),
    ],
)
def test_cache_invalidates_on_spec_change(field, value):
    from dataclasses import replace

    base = TINY.cells()[0]
    changed = replace(base, **{field: value})
    assert spec_key(run_payload(base)) != spec_key(run_payload(changed))


def test_changed_spec_recomputes_not_reuses(tmp_path):
    from dataclasses import replace

    base = TINY.cells()[0]
    execute_cell(base, cache_dir=tmp_path)
    changed = replace(base, hd_patterns=256)
    result = execute_cell(changed, cache_dir=tmp_path)
    # lock + layout stages are spec-identical and must be served from
    # cache; the run stage depends on hd_patterns and must recompute.
    assert result.cache.hits == 2
    assert result.cache.stores == 1
    assert result.run.hd_oer.patterns == 256


def test_corrupt_cache_entry_is_recomputed(tmp_path):
    base = TINY.cells()[0]
    execute_cell(base, cache_dir=tmp_path)
    for path in tmp_path.glob("*/*.pkl"):
        path.write_bytes(b"not a pickle")
    result = execute_cell(base, cache_dir=tmp_path)
    assert result.cache.hits == 0
    assert result.run == cell_run(base)


# ---------------------------------------------------------------------------
# Cost campaign and CLI


def test_cost_campaign_produces_stage_deltas(tmp_path):
    cell = CellSpec(
        benchmark="b14", key_bits=10, scale=0.03, max_candidates=60
    )
    data = run_cost_campaign(
        [cell], workers=1, cache_dir=tmp_path, split_layers=(4,)
    )
    assert set(data) == {"b14"}
    assert set(data["b14"]) == {"prelift", "M4"}
    for deltas in data["b14"].values():
        assert set(deltas) == {"area", "power", "timing"}


def test_cli_smoke_cell_passes(tmp_path, capsys):
    argv = ["smoke", "--cache-dir", str(tmp_path), "--workers", "1"]
    assert cli_main(argv) == 0
    out = capsys.readouterr().out
    assert "Campaign smoke cell" in out
    # a second invocation is served entirely from the cache
    assert cli_main(argv) == 0


def test_cli_sweep_runs_custom_grid(tmp_path, capsys):
    json_path = tmp_path / "sweep.json"
    assert (
        cli_main(
            [
                "sweep",
                "--benchmarks",
                "random:i8-o4-g60",
                "--splits",
                "4",
                "--key-bits",
                "10",
                "--hd-patterns",
                "256",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--workers",
                "1",
                "--json",
                str(json_path),
            ]
        )
        == 0
    )
    assert "random:i8-o4-g60/M4/k10" in capsys.readouterr().out
    import json

    payload = json.loads(json_path.read_text())
    assert payload[0]["cell"]["benchmark"] == "random:i8-o4-g60"


def test_smoke_campaign_is_single_small_cell():
    cells = smoke_campaign().cells()
    assert len(cells) == 1
    assert cells[0].hd_patterns <= 4096


# ---------------------------------------------------------------------------
# Result keying and worker sizing


def test_result_keys_carry_seeds_for_duplicate_benchmark_grids():
    """Two cells differing only in a seed must not collapse in runs()."""
    from dataclasses import replace

    from repro.runner.engine import CampaignResult, CellResult
    from repro.utils.artifact_cache import CacheStats

    base = CellSpec(benchmark="b14", split_layer=4, key_bits=12)
    twin = replace(base, hd_seed=base.hd_seed + 1)
    result = CampaignResult(
        cells=[
            CellResult(cell=c, run=object(), seconds=0.0, cache=CacheStats())
            for c in (base, twin)
        ]
    )
    runs = result.runs()
    assert len(runs) == 2
    assert base.result_key in runs and twin.result_key in runs
    assert base.result_key[:3] == twin.result_key[:3] == ("b14", 4, 12)


def test_attack_result_keys_distinguish_seed_twins():
    from dataclasses import replace

    from repro.runner.engine import AttackCampaignResult, AttackCellResult
    from repro.runner.spec import AttackCampaignSpec
    from repro.utils.artifact_cache import CacheStats

    cells = AttackCampaignSpec(
        benchmarks=("b14",), scenarios=("random",), key_bits=(12,)
    ).cells()
    twins = [
        replace(acell, cell=replace(acell.cell, seed=acell.cell.seed + d))
        for acell in cells
        for d in (0, 1)
    ]
    result = AttackCampaignResult(
        cells=[
            AttackCellResult(
                cell=c, outcome=object(), seconds=0.0, cache=CacheStats()
            )
            for c in twins
        ]
    )
    outcomes = result.outcomes()
    assert len(outcomes) == 2
    assert all(key[-1] == "random" for key in outcomes)


def test_default_workers_respects_affinity(monkeypatch):
    """The pool must size to the process's CPU mask, not the machine."""
    import os

    from repro.runner.engine import default_workers

    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    if hasattr(os, "process_cpu_count"):
        monkeypatch.setattr(os, "process_cpu_count", lambda: 3)
    else:
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1, 2})
    assert default_workers() == 3
    monkeypatch.setenv("REPRO_WORKERS", "2")
    assert default_workers() == 2
