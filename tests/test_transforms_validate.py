"""Tests for netlist transforms and the validator."""

import pytest

from repro.netlist.circuit import Circuit, NetlistError
from repro.netlist.gate_types import GateType
from repro.netlist.transforms import (
    count_area,
    insert_buffer,
    insert_on_net,
    merge_circuits,
    relabel_instances,
    substitute_net,
    sweep_dead_logic,
)
from repro.netlist.validate import validate
from repro.sim.bitparallel import functions_equal_exhaustive
from tests.conftest import tiny_mux_circuit


def test_substitute_net_rewires_readers(c17_circuit):
    edits = substitute_net(c17_circuit, "N10", "N11")
    assert edits == 1
    assert "N10" not in c17_circuit.gates["N22"].fanin
    assert c17_circuit.gates["N22"].fanin.count("N11") == 1


def test_substitute_net_repoints_outputs(c17_circuit):
    substitute_net(c17_circuit, "N22", "N23")
    assert c17_circuit.outputs[0] == "N23"


def test_substitute_net_noop():
    circuit = tiny_mux_circuit()
    assert substitute_net(circuit, "z", "z") == 0


def test_insert_buffer_preserves_function():
    circuit = tiny_mux_circuit()
    reference = tiny_mux_circuit()
    insert_buffer(circuit, "t0")
    assert functions_equal_exhaustive(
        circuit, reference
    )


def test_insert_on_net_key_gate_semantics():
    circuit = tiny_mux_circuit()
    circuit.add("key", GateType.TIELO)
    kg = insert_on_net(circuit, "t0", GateType.XOR, side_inputs=("key",))
    # with key = 0 the XOR is transparent: function preserved
    assert functions_equal_exhaustive(circuit, tiny_mux_circuit())
    assert kg in circuit.gates["z"].fanin


def test_sweep_dead_logic_removes_unobservable():
    circuit = tiny_mux_circuit()
    circuit.add("dead1", GateType.NOT, ("a",))
    circuit.add("dead2", GateType.AND, ("dead1", "b"))
    removed = sweep_dead_logic(circuit)
    assert removed == 2
    assert "dead1" not in circuit.gates


def test_sweep_keeps_protected():
    circuit = tiny_mux_circuit()
    circuit.add("keepme", GateType.NOT, ("a",))
    removed = sweep_dead_logic(circuit, keep=["keepme"])
    assert removed == 0
    assert "keepme" in circuit.gates


def test_sweep_keeps_dff_cones():
    circuit = tiny_mux_circuit()
    circuit.add("q", GateType.DFF, ("z",))
    removed = sweep_dead_logic(circuit)
    assert removed == 0


def test_merge_circuits():
    base = tiny_mux_circuit()
    addition = Circuit("add")
    addition.add_input("z")  # connects to base's net z
    addition.add("inv", GateType.NOT, ("z",))
    addition.add_output("inv")
    rename = merge_circuits(base, addition, prefix="m_")
    assert rename["inv"].startswith("m_")
    assert rename["z"] == "z"
    assert base.gates[rename["inv"]].fanin == ("z",)


def test_merge_rejects_unknown_inputs():
    base = tiny_mux_circuit()
    addition = Circuit("add")
    addition.add_input("ghost")
    addition.add("x", GateType.NOT, ("ghost",))
    addition.add_output("x")
    with pytest.raises(NetlistError):
        merge_circuits(base, addition, prefix="m_")


def test_relabel_instances_preserves_function(c17_circuit):
    relabeled = relabel_instances(c17_circuit)
    assert functions_equal_exhaustive(c17_circuit, relabeled)
    internal = [
        g.name
        for g in relabeled.gates.values()
        if not g.is_input and g.name not in relabeled.outputs
    ]
    assert all(name.startswith("n") for name in internal)


def test_count_area_positive(c17_circuit):
    assert count_area(c17_circuit) > 0.0


def test_validate_clean(c17_circuit):
    report = validate(c17_circuit)
    assert report.ok
    assert not report.warnings


def test_validate_undriven_net():
    circuit = Circuit("bad")
    circuit.add_input("a")
    circuit.add("z", GateType.AND, ("a", "ghost"))
    circuit.add_output("z")
    report = validate(circuit)
    assert not report.ok
    assert any("ghost" in e for e in report.errors)
    with pytest.raises(NetlistError):
        report.raise_on_error()


def test_validate_undriven_output():
    circuit = Circuit("bad")
    circuit.add_input("a")
    circuit.outputs.append("nope")
    report = validate(circuit)
    assert any("nope" in e for e in report.errors)


def test_validate_warns_on_floating_net():
    circuit = tiny_mux_circuit()
    circuit.add("float", GateType.NOT, ("a",))
    report = validate(circuit)
    assert report.ok
    assert any("float" in w for w in report.warnings)
    quiet = validate(circuit, allow_dangling=True)
    assert not quiet.warnings


def test_validate_warns_on_degenerate_gate():
    circuit = Circuit("w")
    circuit.add_input("a")
    circuit.add("z", GateType.AND, ("a",))
    circuit.add_output("z")
    report = validate(circuit)
    assert any("single-input" in w for w in report.warnings)


def test_validate_warns_on_duplicate_fanin():
    circuit = Circuit("w")
    circuit.add_input("a")
    circuit.add("z", GateType.AND, ("a", "a"))
    circuit.add_output("z")
    report = validate(circuit)
    assert any("duplicated" in w for w in report.warnings)
