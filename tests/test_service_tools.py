"""Service CI tooling: ping/verify/stress through their real entry points.

These run the same code paths as the CI ``service-smoke`` and
``cache-stress`` jobs, scaled down: a self-hosted server on an
ephemeral port, the real CLI subprocess as the bit-identity reference,
and real client OS processes for the stress round.
"""

from __future__ import annotations

import pytest

from repro.runner.spec import CampaignSpec
from repro.service import ServiceConfig, ServiceThread
from repro.service.__main__ import main as tools_main
from repro.service.verify import run_verify

import repro.service.stress as stress_mod


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    config = ServiceConfig(
        port=0,
        workers=2,
        cache_dir=tmp_path_factory.mktemp("tools-cache"),
    )
    with ServiceThread(config) as thread:
        yield thread


def test_ping_tool(server):
    assert tools_main(["ping", "--url", server.url, "--timeout", "30"]) == 0


def test_verify_cold_then_cached(server, tmp_path):
    cli_cache = tmp_path / "cli-cache"
    assert (
        run_verify(
            server.url, cli_cache_dir=cli_cache, workers=1
        )
        == 0
    )
    # the smoke cells are now in the service cache: the rerun must be
    # served entirely from it (zero new misses)
    assert (
        tools_main(
            [
                "verify",
                "--url",
                server.url,
                "--cli-cache-dir",
                str(cli_cache),
                "--workers",
                "1",
                "--expect-cached",
            ]
        )
        == 0
    )


def test_stress_scaled_down(monkeypatch):
    monkeypatch.setattr(
        stress_mod,
        "STRESS_SPEC",
        CampaignSpec(
            benchmarks=("random:i9-o5-g75",),
            split_layers=(4, 6),
            key_bits=(10,),
            scale=1.0,
            hd_patterns=256,
            max_candidates=60,
        ),
    )
    assert stress_mod.run_stress(clients=2, workers=2, rounds=1) == 0
    with pytest.raises(ValueError, match="at least 2"):
        stress_mod.run_stress(clients=1)
