"""Defense arms-race subsystem: specs, engines, matrix campaigns.

The load-bearing guarantees under test:

* :meth:`Circuit.output_reach_counts` (one reverse-reachability pass)
  agrees with per-net ``transitive_fanout`` cone walks, and the legacy
  ``select_lift_nets`` selection is unchanged by the rewrite;
* every defense engine is deterministic, protects the nets it claims,
  and keeps the ``stub_arrays`` invalidation token honest;
* the ``defense`` stage cache key splits per (scheme, strength, seed,
  layout engine), while undefended cells keep their historical keys;
* a defense x attack matrix grid plans one sibling group per (layout,
  defense) and the fused path is bit-identical to the unfused path;
* :func:`repro.defense.matrix_verdict` judges recovery drops, the
  lifting-family CCR ceiling, and stale/fallback cells.
"""

from __future__ import annotations

import dataclasses
import json
from types import SimpleNamespace

import pytest

from repro.benchgen import GeneratorConfig, generate_random_circuit
from repro.defense import (
    DEFENSES,
    DefenseSpec,
    apply_defense,
    default_defense_names,
    defense_engine_names,
    get_defense_engine,
    matrix_verdict,
    parse_defense,
    resolve_defense,
)
from repro.defense.spec import DEFAULT_DEFENSE_SEED, SCHEME_DEFAULTS
from repro.defenses.wire_lifting import select_lift_nets
from repro.phys.geometry import stub_arrays
from repro.runner import (
    AttackCampaignSpec,
    AttackCellSpec,
    CellSpec,
    run_attack_campaign,
)
from repro.runner.cli import main as cli_main
from repro.runner.grid import plan_campaign
from repro.runner.serialize import attack_record, canonical_json
from repro.runner.spec import parse_scenario
from repro.runner.stages import attack_payload, cell_layout, defense_payload
from repro.utils.artifact_cache import spec_key
from repro.utils.env import env_fraction

CELL = CellSpec(
    benchmark="random:i10-o5-g90",
    split_layer=4,
    key_bits=10,
    hd_patterns=512,
    max_candidates=60,
)

#: Tiny defense x attack matrix: one layout, three defense axis points,
#: two scenarios — six cells, seconds of runtime.
MATRIX = AttackCampaignSpec(
    benchmarks=("random:i10-o5-g90",),
    scenarios=("netflow", "random"),
    defenses=("none", "wire-lifting-lite", "routing-perturbation"),
    split_layers=(4,),
    key_bits=(10,),
    hd_patterns=512,
    max_candidates=60,
)


@pytest.fixture(scope="module")
def layout():
    return cell_layout(CELL, None)


@pytest.fixture(scope="module")
def matrix_result():
    return run_attack_campaign(MATRIX, workers=1, use_cache=False)


# ---------------------------------------------------------------------------
# Reverse-reachability output counts (the select_lift_nets rewrite)


def test_output_reach_counts_matches_cone_walks():
    circuit = generate_random_circuit(
        GeneratorConfig(num_inputs=8, num_outputs=5, num_gates=70, num_dffs=4),
        seed=7,
        name="reach-dp",
    )
    counts = circuit.output_reach_counts()
    outputs = set(circuit.outputs)
    for net in circuit.gates:
        naive = len(outputs & circuit.transitive_fanout([net]))
        assert counts[net] == naive, net


def test_select_lift_nets_order_unchanged(layout):
    circuit = layout.circuit
    routing = layout.routing
    outputs = set(circuit.outputs)
    scored = []
    for net, routed in routing.nets.items():
        if not routed.routes:
            continue
        span = sum(r.length for r in routed.routes)
        influence = len(outputs & circuit.transitive_fanout([net]))
        scored.append(
            (influence * 40.0 + len(routed.routes) * 10.0 + span, net)
        )
    scored.sort(reverse=True)
    count = max(1, int(len(scored) * 0.3))
    naive = {net for _, net in scored[:count]}
    assert select_lift_nets(circuit, routing, 0.3, None) == naive


# ---------------------------------------------------------------------------
# Specs: resolution, validation, vocabulary


def test_spec_resolves_published_defaults():
    for name, spec in DEFENSES.items():
        resolved = spec.resolve()
        assert resolved.is_resolved, name
        assert resolved.seed == DEFAULT_DEFENSE_SEED
        defaults = SCHEME_DEFAULTS[spec.scheme]
        for knob, value in defaults.items():
            if getattr(spec, knob) is None:
                assert getattr(resolved, knob) == value, (name, knob)
        # resolution is idempotent and round-trips through JSON
        assert resolved.resolve() == resolved
        payload = json.loads(json.dumps(resolved.to_payload()))
        assert DefenseSpec.from_payload(payload) == resolved


def test_spec_resolution_honours_env_knobs(monkeypatch):
    monkeypatch.setenv("REPRO_DEFENSE_SEED", "77")
    monkeypatch.setenv("REPRO_DEFENSE_FRACTION", "0.5")
    resolved = parse_defense("wire-lifting").resolve()
    assert resolved.seed == 77 and resolved.fraction == 0.5
    # explicit spec values win over the env
    pinned = DefenseSpec("pinned", fraction=0.1, seed=3).resolve()
    assert pinned.seed == 3 and pinned.fraction == 0.1


def test_spec_validation_rejects_bad_knobs():
    with pytest.raises(ValueError, match="unknown defense scheme"):
        DefenseSpec("x", scheme="bogus")
    with pytest.raises(ValueError, match="fraction"):
        DefenseSpec("x", fraction=0.0)
    with pytest.raises(ValueError, match="fraction"):
        DefenseSpec("x", fraction=1.5)
    with pytest.raises(ValueError, match="obfuscation"):
        DefenseSpec("x", obfuscate=1.5)


def test_defense_vocabulary_and_none_baseline():
    assert resolve_defense("none") is None
    with pytest.raises(KeyError, match="none"):
        parse_defense("bogus")
    with pytest.raises(KeyError, match="unknown defense engine"):
        get_defense_engine("bogus")
    assert defense_engine_names() == (
        "beol-restore",
        "routing-perturbation",
        "wire-lifting",
    )
    with pytest.raises(ValueError, match="resolved"):
        apply_defense(parse_defense("wire-lifting"), None, 4)


def test_default_defense_names_narrowed_by_env(monkeypatch):
    assert default_defense_names() == (
        "none",
        "routing-perturbation",
        "wire-lifting",
        "beol-restore",
    )
    monkeypatch.setenv("REPRO_DEFENSE_SCHEME", "wire-lifting")
    assert default_defense_names() == ("none", "wire-lifting")
    monkeypatch.setenv("REPRO_DEFENSE_SCHEME", "none")
    assert default_defense_names() == ("none",)
    monkeypatch.setenv("REPRO_DEFENSE_SCHEME", "bogus")
    with pytest.raises(ValueError):
        default_defense_names()


def test_env_fraction_rejects_bad_values(monkeypatch):
    monkeypatch.setenv("REPRO_DEFENSE_FRACTION", "nope")
    with pytest.raises(ValueError, match="not a number"):
        env_fraction("REPRO_DEFENSE_FRACTION")
    monkeypatch.setenv("REPRO_DEFENSE_FRACTION", "1.5")
    with pytest.raises(ValueError):
        env_fraction("REPRO_DEFENSE_FRACTION")
    monkeypatch.setenv("REPRO_DEFENSE_FRACTION", "")
    assert env_fraction("REPRO_DEFENSE_FRACTION", 0.25) == 0.25


# ---------------------------------------------------------------------------
# Engines: determinism, protection bookkeeping, stub-array invalidation


@pytest.mark.parametrize("name", sorted(DEFENSES))
def test_engines_are_deterministic_and_account_cost(name, layout):
    spec = resolve_defense(name)
    first = apply_defense(spec, layout, CELL.split_layer)
    second = apply_defense(spec, layout, CELL.split_layer)
    assert first.protected_nets == second.protected_nets
    assert first.protected_nets
    assert first.cost == second.cost
    assert first.cost.protected_nets == len(first.protected_nets)
    assert first.cost.cost_units > 0
    stubs = lambda view: [  # noqa: E731
        (s.stub_id, s.x, s.y) for s in view.source_stubs + view.sink_stubs
    ]
    assert stubs(first.view) == stubs(second.view)
    summary = first.summary()
    assert summary["name"] == name and summary["scheme"] == spec.scheme


@pytest.mark.parametrize("name", sorted(DEFENSES))
def test_stub_arrays_invalidate_across_every_engine(name, layout):
    defended = apply_defense(resolve_defense(name), layout, CELL.split_layer)
    view = defended.view
    # every engine reassigns stub lists after the re-split, bumping the
    # invalidation token
    assert getattr(view, "_stub_version", 0) >= 1
    arrays = stub_arrays(view)
    assert {int(i): float(x) for i, x in zip(
        arrays.sink_stub_id, arrays.sink_x
    )} == {s.stub_id: s.x for s in view.sink_stubs}
    assert stub_arrays(view) is arrays  # cached while untouched
    moved = [
        dataclasses.replace(s, x=s.x + 1.0) for s in view.sink_stubs
    ]
    view.sink_stubs = moved
    fresh = stub_arrays(view)
    assert fresh is not arrays
    assert {int(i): float(x) for i, x in zip(
        fresh.sink_stub_id, fresh.sink_x
    )} == {s.stub_id: s.x for s in moved}


def test_lifting_engines_erase_proximity_by_cositing(layout):
    defended = apply_defense(
        resolve_defense("wire-lifting"), layout, CELL.split_layer
    )
    sites = {
        (s.x, s.y)
        for s in defended.view.sink_stubs
        if s.net in defended.protected_nets
    }
    # concerted: many protected stubs share few co-sited via locations
    assert len(sites) <= defended.summary()["lifting_sites"]
    protected_sinks = sum(
        1
        for s in defended.view.sink_stubs
        if s.net in defended.protected_nets
    )
    assert protected_sinks > len(sites)


def test_beol_restore_obfuscates_on_top_of_lifting(layout):
    lifted = apply_defense(
        resolve_defense("wire-lifting"), layout, CELL.split_layer
    )
    restored = apply_defense(
        resolve_defense("beol-restore"), layout, CELL.split_layer
    )
    assert restored.protected_nets == lifted.protected_nets
    flipped = restored.summary()["obfuscated_gates"]
    assert flipped > 0
    differs = [
        net
        for net, gate in restored.view.gates.items()
        if layout.circuit.gates[net].gate_type != gate.gate_type
    ]
    assert len(differs) == flipped
    assert set(differs) <= restored.protected_nets


# ---------------------------------------------------------------------------
# Cache keys: the defense stage and the defended attack stage


def test_defense_stage_cache_key_splits(monkeypatch):
    def key(spec):
        return spec_key(defense_payload(CELL, spec))

    lifting = resolve_defense("wire-lifting")
    assert key(lifting) != key(resolve_defense("beol-restore"))
    assert key(lifting) != key(resolve_defense("wire-lifting-lite"))
    assert key(lifting) != key(dataclasses.replace(lifting, seed=999))
    monkeypatch.setenv("REPRO_LAYOUT_ENGINE", "reference")
    referenced = key(lifting)
    monkeypatch.setenv("REPRO_LAYOUT_ENGINE", "compiled")
    assert key(lifting) != referenced


def test_attack_cache_key_tracks_defense_axis():
    scenario = parse_scenario("netflow").resolve()
    bare = AttackCellSpec(cell=CELL, scenario=scenario)
    defended = AttackCellSpec(
        cell=CELL, scenario=scenario, defense=resolve_defense("wire-lifting")
    )
    # undefended cells keep the historical key shape
    assert "defense" not in attack_payload(bare)
    assert spec_key(attack_payload(bare)) != spec_key(
        attack_payload(defended)
    )
    other = AttackCellSpec(
        cell=CELL, scenario=scenario, defense=resolve_defense("beol-restore")
    )
    assert spec_key(attack_payload(defended)) != spec_key(
        attack_payload(other)
    )
    assert AttackCellSpec.from_payload(defended.to_payload()) == defended
    assert defended.cell_id.endswith("/wire-lifting/netflow")
    assert defended.result_key[-1] == "netflow"
    assert defended.result_key[-2] == "wire-lifting"


# ---------------------------------------------------------------------------
# Matrix campaigns: planning, fused identity, caching, serialization


def test_matrix_expands_and_round_trips():
    cells = MATRIX.cells()
    assert len(cells) == 6
    assert [c.cell_id for c in cells] == [
        "random:i10-o5-g90/M4/k10/netflow",
        "random:i10-o5-g90/M4/k10/random",
        "random:i10-o5-g90/M4/k10/wire-lifting-lite/netflow",
        "random:i10-o5-g90/M4/k10/wire-lifting-lite/random",
        "random:i10-o5-g90/M4/k10/routing-perturbation/netflow",
        "random:i10-o5-g90/M4/k10/routing-perturbation/random",
    ]
    assert AttackCampaignSpec.from_payload(MATRIX.to_payload()) == MATRIX
    with pytest.raises(KeyError):
        AttackCampaignSpec(benchmarks=("b14",), defenses=("bogus",))
    with pytest.raises(ValueError, match="defense"):
        AttackCampaignSpec(benchmarks=("b14",), defenses=())


def test_matrix_plans_one_group_per_layout_defense():
    plan = plan_campaign(MATRIX.cells())
    assert len(plan.groups) == 3
    assert plan.unique_locks == 1
    assert len({g.layout_key for g in plan.groups}) == 1
    keys = [g.defense_key for g in plan.groups]
    assert keys[0] == "" and "" not in keys[1:]
    assert len(set(keys)) == 3
    # scenario siblings of one defense stay fused
    assert all(len(g) == 2 for g in plan.groups)


def test_fused_matrix_matches_unfused(matrix_result, monkeypatch):
    monkeypatch.setenv("REPRO_GRID_FUSE", "0")
    unfused = run_attack_campaign(MATRIX, workers=1, use_cache=False)
    assert canonical_json(
        [attack_record(r) for r in unfused.cells]
    ) == canonical_json([attack_record(r) for r in matrix_result.cells])


def test_matrix_cached_rerun_is_bit_identical(tmp_path, matrix_result):
    cache_dir = tmp_path / "cache"
    cold = run_attack_campaign(MATRIX, workers=1, cache_dir=cache_dir)
    assert cold.cache_stats().stages["defense"].misses == 2
    warm = run_attack_campaign(MATRIX, workers=1, cache_dir=cache_dir)
    stats = warm.cache_stats()
    assert stats.misses == 0
    assert stats.stages["attack"].hits == len(MATRIX.cells())
    assert stats.stages["defense"].hits == 2
    assert canonical_json(
        [attack_record(r) for r in warm.cells]
    ) == canonical_json([attack_record(r) for r in matrix_result.cells])


def test_defended_outcomes_reduce_effective_recovery(matrix_result):
    outcomes = matrix_result.outcomes()
    baseline = next(
        o
        for k, o in outcomes.items()
        if k[-1] == "netflow" and "wire-lifting-lite" not in k
        and "routing-perturbation" not in k
    )
    floor = baseline.diagnostics["recovery"]["effective_regular_recovery"]
    assert baseline.diagnostics["recovery"]["total_regular_connections"] > 0
    for key, outcome in outcomes.items():
        if key[-1] != "netflow" or outcome is baseline:
            continue
        recovery = outcome.diagnostics["recovery"]
        # the denominator is the undefended layout's population, so the
        # recoveries are directly comparable across the defense axis
        assert (
            recovery["total_regular_connections"]
            == baseline.diagnostics["recovery"]["total_regular_connections"]
        )
        assert recovery["effective_regular_recovery"] < floor, key
        assert "defense" in outcome.diagnostics, key


def test_attack_records_carry_defense_blocks(matrix_result):
    records = [attack_record(r) for r in matrix_result.cells]
    for record in records:
        if record["cell"].get("defense") is None:
            assert "defense" not in record
            continue
        block = record["defense"]
        assert block["name"] == record["cell"]["defense"]["name"]
        assert block["protected_nets"] > 0
        assert block["effective_regular_recovery"] is not None


# ---------------------------------------------------------------------------
# The matrix verdict


def _item(defense, scenario="netflow", recovery=40.0, ccr=0.5, total=100,
          engine="compiled-array", extra=None):
    acell = AttackCellSpec(
        cell=CELL,
        scenario=parse_scenario(scenario).resolve(),
        defense=resolve_defense(defense),
    )
    diagnostics = {
        "recovery": {
            "total_regular_connections": total,
            "effective_regular_recovery": recovery,
        }
    }
    if defense != "none":
        diagnostics["defense"] = {"protected_ccr": ccr}
    if extra:
        diagnostics.update(extra)
    return SimpleNamespace(
        cell=acell,
        outcome=SimpleNamespace(sim_engine=engine, diagnostics=diagnostics),
    )


def test_matrix_verdict_accepts_a_clean_matrix():
    ok, problems = matrix_verdict(
        [
            _item("none", recovery=60.0),
            _item("wire-lifting", recovery=30.0, ccr=0.0),
            _item("routing-perturbation", recovery=50.0, ccr=80.0),
        ]
    )
    assert ok, problems


def test_matrix_verdict_flags_every_failure_mode():
    ok, problems = matrix_verdict([])
    assert not ok and any("no netflow" in p for p in problems)

    ok, problems = matrix_verdict([_item("wire-lifting", recovery=30.0)])
    assert not ok and any("no undefended baseline" in p for p in problems)

    ok, problems = matrix_verdict(
        [_item("none", recovery=60.0), _item("wire-lifting", recovery=60.0)]
    )
    assert not ok and any("did not drop" in p for p in problems)

    ok, problems = matrix_verdict(
        [
            _item("none", recovery=60.0),
            _item("wire-lifting", recovery=30.0, ccr=15.0),
        ]
    )
    assert not ok and any("ceiling" in p for p in problems)

    stale = _item("wire-lifting", recovery=30.0)
    del stale.outcome.diagnostics["recovery"]
    del stale.outcome.diagnostics["defense"]
    ok, problems = matrix_verdict([_item("none", recovery=60.0), stale])
    assert not ok and sum("stale cache" in p for p in problems) == 2

    ok, problems = matrix_verdict(
        [
            _item("none", recovery=60.0),
            _item("wire-lifting", recovery=30.0, engine="bigint"),
        ]
    )
    assert not ok and any("fell back" in p for p in problems)


def test_matrix_verdict_passes_on_the_real_matrix(matrix_result):
    # the tiny grid has no "learned" cells, and its 90-gate circuit puts
    # chance-level matches above the b14-tuned lifting CCR ceiling —
    # judge the netflow column of the schemes the ceiling exempts (the
    # full-ceiling verdict runs on the b14 grid in the CI matrix smoke)
    items = [
        r
        for r in matrix_result.cells
        if r.cell.defense is None
        or r.cell.defense.scheme == "routing-perturbation"
    ]
    ok, problems = matrix_verdict(items, scenarios=("netflow",))
    assert ok, problems


# ---------------------------------------------------------------------------
# CLI


def test_cli_attacks_rejects_unknown_defense():
    assert (
        cli_main(["attacks", "--benchmarks", "b14", "--defenses", "bogus"])
        == 2
    )


def test_cli_attacks_runs_a_defense_matrix(tmp_path, capsys):
    code = cli_main(
        [
            "attacks",
            "--benchmarks", "random:i10-o5-g90",
            "--scenarios", "random",
            "--defenses", "none,wire-lifting-lite",
            "--splits", "4",
            "--key-bits", "10",
            "--hd-patterns", "512",
            "--workers", "1",
            "--cache-dir", str(tmp_path / "cli-cache"),
            "--json", str(tmp_path / "out.json"),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "wire-lifting-lite" in out
    payload = json.loads((tmp_path / "out.json").read_text())
    assert len(payload) == 2
    defended = [r for r in payload if "defense" in r]
    assert len(defended) == 1
    assert defended[0]["defense"]["scheme"] == "wire-lifting"
