"""Unit tests for primitive gate semantics."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netlist.gate_types import (
    GateType,
    controlling_value,
    evaluate_gate,
    evaluate_gate_words,
    fanin_arity_ok,
    inversion_parity,
    parse_gate_type,
)

BINARY_TRUTH = {
    GateType.AND: lambda a, b: a & b,
    GateType.NAND: lambda a, b: 1 - (a & b),
    GateType.OR: lambda a, b: a | b,
    GateType.NOR: lambda a, b: 1 - (a | b),
    GateType.XOR: lambda a, b: a ^ b,
    GateType.XNOR: lambda a, b: 1 - (a ^ b),
}


@pytest.mark.parametrize("gate_type", list(BINARY_TRUTH))
def test_binary_truth_tables(gate_type):
    for a, b in itertools.product((0, 1), repeat=2):
        assert evaluate_gate(gate_type, (a, b)) == BINARY_TRUTH[gate_type](a, b)


@pytest.mark.parametrize(
    "gate_type,expected",
    [(GateType.NOT, [1, 0]), (GateType.BUF, [0, 1])],
)
def test_unary_truth_tables(gate_type, expected):
    assert [evaluate_gate(gate_type, (v,)) for v in (0, 1)] == expected


def test_tie_cells_are_constant():
    assert evaluate_gate(GateType.TIEHI, ()) == 1
    assert evaluate_gate(GateType.TIELO, ()) == 0


@pytest.mark.parametrize("gate_type", list(BINARY_TRUTH))
def test_three_input_generalisation(gate_type):
    for bits in itertools.product((0, 1), repeat=3):
        got = evaluate_gate(gate_type, bits)
        step = BINARY_TRUTH[gate_type]
        if gate_type in (GateType.AND, GateType.OR):
            want = step(step(bits[0], bits[1]) if gate_type is GateType.AND else bits[0] | bits[1], bits[2])
            want = (
                bits[0] & bits[1] & bits[2]
                if gate_type is GateType.AND
                else bits[0] | bits[1] | bits[2]
            )
        elif gate_type is GateType.NAND:
            want = 1 - (bits[0] & bits[1] & bits[2])
        elif gate_type is GateType.NOR:
            want = 1 - (bits[0] | bits[1] | bits[2])
        elif gate_type is GateType.XOR:
            want = bits[0] ^ bits[1] ^ bits[2]
        else:
            want = 1 - (bits[0] ^ bits[1] ^ bits[2])
        assert got == want


@given(
    st.sampled_from(sorted(BINARY_TRUTH, key=lambda g: g.value)),
    st.lists(st.integers(0, 1), min_size=1, max_size=6),
)
def test_words_agree_with_scalar(gate_type, column):
    """Bit-parallel evaluation lane-for-lane equals scalar evaluation."""
    lanes = len(column)
    mask = (1 << lanes) - 1
    # one word per "input"; build 2 inputs from the column and its reverse
    w1 = sum(bit << i for i, bit in enumerate(column))
    w2 = sum(bit << i for i, bit in enumerate(reversed(column)))
    word = evaluate_gate_words(gate_type, [w1, w2], mask)
    for lane in range(lanes):
        a = (w1 >> lane) & 1
        b = (w2 >> lane) & 1
        assert (word >> lane) & 1 == evaluate_gate(gate_type, (a, b))


def test_controlling_values():
    assert controlling_value(GateType.AND) == 0
    assert controlling_value(GateType.NAND) == 0
    assert controlling_value(GateType.OR) == 1
    assert controlling_value(GateType.NOR) == 1
    assert controlling_value(GateType.XOR) is None
    assert controlling_value(GateType.NOT) is None


def test_inversion_parity():
    inverting = {GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT}
    for gate_type in GateType:
        if gate_type in (GateType.INPUT, GateType.DFF):
            continue
        assert inversion_parity(gate_type) == (1 if gate_type in inverting else 0)


def test_arity_checks():
    assert fanin_arity_ok(GateType.INPUT, 0)
    assert not fanin_arity_ok(GateType.INPUT, 1)
    assert fanin_arity_ok(GateType.NOT, 1)
    assert not fanin_arity_ok(GateType.NOT, 2)
    assert fanin_arity_ok(GateType.AND, 5)
    assert fanin_arity_ok(GateType.TIEHI, 0)
    assert not fanin_arity_ok(GateType.TIELO, 1)
    assert fanin_arity_ok(GateType.DFF, 1)


@pytest.mark.parametrize(
    "token,expected",
    [
        ("NAND", GateType.NAND),
        ("inv", GateType.NOT),
        ("Buffer", GateType.BUF),
        ("vdd", GateType.TIEHI),
        ("gnd", GateType.TIELO),
        ("DFF", GateType.DFF),
        ("xnor", GateType.XNOR),
    ],
)
def test_parse_gate_type(token, expected):
    assert parse_gate_type(token) is expected


def test_parse_gate_type_rejects_unknown():
    with pytest.raises(ValueError):
        parse_gate_type("tristate")


def test_evaluate_gate_rejects_non_combinational():
    with pytest.raises(ValueError):
        evaluate_gate(GateType.DFF, (0,))
    with pytest.raises(ValueError):
        evaluate_gate(GateType.INPUT, ())
