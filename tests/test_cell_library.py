"""Cell library model tests."""

import pytest

from repro.netlist.cell_library import (
    NANGATE45,
    ROW_HEIGHT_UM,
    SITE_WIDTH_UM,
    CellLibrary,
)
from repro.netlist.gate_types import GateType


def test_lookup_by_name():
    cell = NANGATE45.by_name("NAND2_X1")
    assert cell.gate_type is GateType.NAND
    assert cell.arity == 2


def test_cell_for_picks_smallest_adequate():
    cell = NANGATE45.cell_for(GateType.AND, 3)
    assert cell.name == "AND3_X1"
    cell = NANGATE45.cell_for(GateType.NOR, 2)
    assert cell.name == "NOR2_X1"


def test_cell_for_rejects_inputs():
    with pytest.raises(KeyError):
        NANGATE45.cell_for(GateType.INPUT, 0)


def test_cell_for_raises_beyond_widest():
    with pytest.raises(ValueError):
        NANGATE45.cell_for(GateType.AND, 9)


def test_mapping_simple_gate_is_single_cell():
    cells = NANGATE45.mapping_for(GateType.NAND, 2)
    assert len(cells) == 1 and cells[0].name == "NAND2_X1"


def test_mapping_wide_gate_decomposes():
    cells = NANGATE45.mapping_for(GateType.AND, 9)
    # 9 inputs: two AND4 + AND(rest) levels; all cells must be ANDs
    assert len(cells) >= 3
    assert all(c.gate_type is GateType.AND for c in cells)


def test_mapping_wide_nand_ends_inverted():
    cells = NANGATE45.mapping_for(GateType.NAND, 8)
    assert cells[-1].gate_type is GateType.NAND
    assert all(c.gate_type is GateType.AND for c in cells[:-1])


def test_mapping_wide_xor_chains():
    cells = NANGATE45.mapping_for(GateType.XOR, 5)
    assert len(cells) == 4
    assert cells[-1].gate_type is GateType.XOR


def test_mapping_wide_xnor_polarity_on_last():
    cells = NANGATE45.mapping_for(GateType.XNOR, 4)
    assert cells[-1].gate_type is GateType.XNOR
    assert all(c.gate_type is GateType.XOR for c in cells[:-1])


def test_mapping_degenerate_single_input():
    cells = NANGATE45.mapping_for(GateType.AND, 1)
    assert cells[0].gate_type is GateType.BUF


def test_tie_cells_present_and_tiny():
    hi = NANGATE45.cell_for(GateType.TIEHI, 0)
    lo = NANGATE45.cell_for(GateType.TIELO, 0)
    nand = NANGATE45.cell_for(GateType.NAND, 2)
    assert hi.area_um2 < nand.area_um2
    assert lo.drive_res_kohm == 0.0  # not an actual driver (paper hint 3)
    assert lo.input_cap_ff == 0.0


def test_area_monotonic_in_arity():
    a2 = NANGATE45.gate_area(GateType.AND, 2)
    a4 = NANGATE45.gate_area(GateType.AND, 4)
    a9 = NANGATE45.gate_area(GateType.AND, 9)
    assert a2 < a4 < a9


def test_delay_increases_with_load():
    d_small = NANGATE45.gate_delay(GateType.NAND, 2, load_ff=1.0)
    d_big = NANGATE45.gate_delay(GateType.NAND, 2, load_ff=20.0)
    assert d_big > d_small


def test_delay_of_decomposed_gate_exceeds_single():
    single = NANGATE45.gate_delay(GateType.AND, 4, load_ff=2.0)
    wide = NANGATE45.gate_delay(GateType.AND, 12, load_ff=2.0)
    assert wide > single


def test_input_area_leakage_are_zero():
    assert NANGATE45.gate_area(GateType.INPUT, 0) == 0.0
    assert NANGATE45.gate_leakage(GateType.INPUT, 0) == 0.0


def test_width_sites_consistent_with_area():
    for cell in NANGATE45.cells:
        expected = cell.area_um2 / ROW_HEIGHT_UM / SITE_WIDTH_UM
        assert abs(cell.width_sites - expected) < 1.0


def test_helper_cells():
    assert NANGATE45.cell_for_buffer().gate_type is GateType.BUF
    assert NANGATE45.cell_for_dff().gate_type is GateType.DFF


def test_custom_library_instance():
    lib = CellLibrary(NANGATE45.cells)
    assert lib.widest(GateType.OR).arity == 4
