"""Proximity-attack edge cases: degenerate views and circuits.

The satellite cases: an *empty cut set* (a split so high nothing is
broken), *single-candidate* nets, exactly *tied* distance scores, and
*constant-output* circuits — each exercised under both simulation
engines where simulation is involved.
"""

from __future__ import annotations

import pytest

from repro.adversary import SCENARIOS, build_candidates, get_engine, run_scenario
from repro.adversary.engine import AttackContext
from repro.attacks import proximity_attack
from repro.attacks.result import rebuild_netlist
from repro.locking import AtpgLockConfig, atpg_lock
from repro.metrics import compute_ccr, compute_hd_oer
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.phys import build_locked_layout
from repro.phys.layout import build_unprotected_layout
from repro.phys.split import FeolView, SinkStub, SourceStub
from tests.conftest import build_random_circuit

ENGINES = ("proximity", "netflow", "learned", "random")


def _scenario_context(view, name, locked=None):
    scenario = SCENARIOS[name].resolve()
    return AttackContext(
        view=view,
        scenario=scenario,
        seed=scenario.seed,
        budget=scenario.budget,
        locked=locked,
    )


# ----------------------------------------------------------------------
# Empty cut set: the split breaks nothing
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def empty_view():
    circuit = build_random_circuit(3, num_inputs=8, num_gates=60, num_outputs=4)
    layout = build_unprotected_layout(circuit, seed=1)
    view = layout.feol_view(99)  # far above the routing stack
    assert not view.source_stubs and not view.sink_stubs
    return circuit, view


@pytest.mark.parametrize("engine_name", ENGINES)
def test_empty_cut_set_yields_perfect_netlist(empty_view, engine_name):
    circuit, view = empty_view
    result = get_engine(engine_name).run(_scenario_context(view, engine_name if engine_name in SCENARIOS else "random"))
    assert result.assignment == {}
    ccr = compute_ccr(result)
    assert ccr.regular_ccr == 0.0 and ccr.regular_broken == 0
    assert ccr.key_broken == 0
    # nothing was hidden, so the "recovered" netlist is exact
    report = compute_hd_oer(circuit, result.recovered, patterns=256)
    assert report.hd_percent == 0.0 and report.oer_percent == 0.0


def test_empty_cut_set_candidates_are_empty(empty_view):
    from repro.adversary import FEATURE_NAMES

    _, view = empty_view
    candidates = build_candidates(view, per_sink=8, with_labels=True)
    assert candidates.num_pairs == 0
    assert candidates.features.shape == (0, len(FEATURE_NAMES))
    assert candidates.labels.size == 0


# ----------------------------------------------------------------------
# Single-candidate and tied-distance synthetic views
# ----------------------------------------------------------------------
def _pair_circuit() -> Circuit:
    circuit = Circuit("pairs")
    circuit.add_input("a")
    circuit.add_input("b")
    circuit.add_input("c")
    circuit.add("g1", GateType.AND, ("a", "b"))
    circuit.add("g2", GateType.OR, ("g1", "c"))
    circuit.add_output("g2")
    return circuit


def _view_with(sources, sinks) -> FeolView:
    circuit = _pair_circuit()
    view = FeolView("pairs", 4)
    view.gates = dict(circuit.gates)
    view.outputs = list(circuit.outputs)
    view.source_stubs = list(sources)
    view.sink_stubs = list(sinks)
    return view


def test_single_candidate_net_is_matched_by_every_engine():
    # One broken connection, one possible driver: a -> g1 pin 0.
    source = SourceStub(0, "PAD:a", "a", 1.0, 1.0, False, None, None)
    sink = SinkStub(1, "g1", 0, "a", 4.0, 1.0, True, None)
    for engine_name in ("proximity", "netflow", "random"):
        view = _view_with([source], [sink])
        result = get_engine(engine_name).run(
            _scenario_context(view, engine_name)
        )
        assert result.assignment == {1: "a"}, engine_name
        assert compute_ccr(result).regular_ccr == 100.0


def test_tied_distance_scores_resolve_deterministically():
    # Two sources exactly equidistant from the sink; the attack must
    # commit the same choice on every run (stable stub-id order).
    tie_a = SourceStub(0, "PAD:a", "a", 0.0, 0.0, False, None, None)
    tie_b = SourceStub(1, "PAD:b", "b", 0.0, 4.0, False, None, None)
    sink = SinkStub(2, "g1", 0, "a", 0.0, 2.0, True, None)
    picks = set()
    for _ in range(3):
        view = _view_with([tie_a, tie_b], [sink])
        result = proximity_attack(view)
        picks.add(result.assignment[2])
    assert len(picks) == 1  # deterministic under exact ties
    for _ in range(2):
        view = _view_with([tie_a, tie_b], [sink])
        netflow = get_engine("netflow").run(_scenario_context(view, "netflow"))
        picks.add(netflow.assignment[2])
    assert len(picks) == 1  # both matchers agree on the tie-break


def test_rebuild_handles_self_loop_only_candidates():
    # The only candidate source is the sink's own gate: rebuild must
    # still produce a complete, acyclic netlist via the fallback.
    source = SourceStub(0, "g1", "g1", 1.0, 1.0, False, None, None)
    sink = SinkStub(1, "g1", 0, "a", 2.0, 1.0, True, None)
    view = _view_with([source], [sink])
    rebuilt = rebuild_netlist(view, {}, "fallback")
    rebuilt.topological_order()  # must not raise


# ----------------------------------------------------------------------
# Degenerate constant-output circuits, under both sim engines
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def constant_design():
    circuit = Circuit("const")
    for name in ("a", "b", "s"):
        circuit.add_input(name)
    circuit.add("na", GateType.NOT, ("a",))
    circuit.add("z0", GateType.AND, ("a", "na"))  # constant 0
    circuit.add("z1", GateType.OR, ("a", "na"))  # constant 1
    circuit.add("z2", GateType.AND, ("b", "s"))  # live logic
    circuit.add_output("z0")
    circuit.add_output("z1")
    circuit.add_output("z2")
    locked, _ = atpg_lock(
        circuit, AtpgLockConfig(key_bits=4, seed=3, run_lec=False)
    )
    layout = build_locked_layout(locked, split_layer=4, seed=1)
    return circuit, locked, layout.feol_view()


def test_constant_outputs_attacked_identically_on_both_engines(
    monkeypatch, constant_design
):
    circuit, _, view = constant_design
    reports = {}
    for sim_engine in ("bigint", "compiled"):
        monkeypatch.setenv("REPRO_SIM_ENGINE", sim_engine)
        result = proximity_attack(view)
        reports[sim_engine] = compute_hd_oer(
            circuit, result.recovered, patterns=512
        )
    # Constant cones cap the reachable HD: z0/z1 cannot differ unless
    # the attacker breaks the constant, so whatever the number is it
    # must be engine-independent bit for bit.
    assert reports["bigint"] == reports["compiled"]
    assert 0.0 <= reports["bigint"].hd_percent <= 100.0


def test_constant_circuit_scenarios_run_on_both_engines(
    monkeypatch, constant_design
):
    circuit, locked, view = constant_design
    metrics = {}
    for sim_engine in ("bigint", "compiled"):
        monkeypatch.setenv("REPRO_SIM_ENGINE", sim_engine)
        outcome = run_scenario(
            SCENARIOS["netflow"].resolve(),
            view,
            locked,
            circuit,
            "const",
            4,
            hd_patterns=512,
        )
        assert outcome.hd_oer is not None
        metrics[sim_engine] = (
            outcome.hd_oer.hd_percent,
            outcome.hd_oer.oer_percent,
            outcome.ccr.regular_ccr,
            outcome.ccr.key_logical_ccr,
        )
    assert metrics["bigint"] == metrics["compiled"]
