"""Attack and metric tests on real locked layouts and synthetic views."""

import pytest

from repro.attacks import (
    ProximityAttackConfig,
    demonstrate_sat_futility,
    ideal_attack,
    proximity_attack,
    random_guess_attack,
    reconnect_key_gates_to_ties,
)
from repro.attacks.result import rebuild_netlist
from repro.locking import AtpgLockConfig, atpg_lock
from repro.metrics import compute_ccr, compute_hd_oer, compute_pnr
from repro.phys import build_locked_layout
from tests.conftest import build_random_circuit


@pytest.fixture(scope="module")
def attacked_design():
    circuit = build_random_circuit(40, num_inputs=12, num_gates=200, num_outputs=8)
    locked, _ = atpg_lock(
        circuit, AtpgLockConfig(key_bits=16, seed=5, run_lec=False)
    )
    layout = build_locked_layout(locked, split_layer=4, seed=2)
    view = layout.feol_view()
    return circuit, locked, layout, view


def test_attack_assigns_every_sink(attacked_design):
    _, _, _, view = attacked_design
    result = proximity_attack(view)
    assigned = set(result.assignment)
    assert assigned == {s.stub_id for s in view.sink_stubs}


def test_attack_recovers_an_acyclic_netlist(attacked_design):
    circuit, _, _, view = attacked_design
    result = proximity_attack(view)
    assert result.recovered is not None
    result.recovered.topological_order()  # must not raise
    assert sorted(result.recovered.inputs) == sorted(circuit.inputs)
    assert len(result.recovered.outputs) == len(circuit.outputs)


def test_attack_beats_random_on_regular_nets(attacked_design):
    _, _, _, view = attacked_design
    prox = compute_ccr(proximity_attack(view))
    rand = compute_ccr(random_guess_attack(view, seed=3))
    assert prox.regular_ccr > rand.regular_ccr


def test_attack_does_not_beat_random_on_key_nets(attacked_design):
    """The paper's core claim: no hint helps against the key-nets."""
    _, _, _, view = attacked_design
    improved = reconnect_key_gates_to_ties(proximity_attack(view))
    ccr = compute_ccr(improved)
    assert ccr.key_logical_ccr < 85.0  # far from reliable recovery
    assert ccr.key_physical_ccr < 30.0


def test_postprocess_moves_key_pins_to_ties(attacked_design):
    _, _, _, view = attacked_design
    raw = proximity_attack(view)
    improved = reconnect_key_gates_to_ties(raw)
    tie_nets = {s.net for s in view.source_stubs if s.is_tie}
    for stub in view.key_sink_stubs:
        assert improved.assignment[stub.stub_id] in tie_nets
    # already-correctly-tied pins are kept as is
    for stub in view.key_sink_stubs:
        if raw.assignment.get(stub.stub_id) in tie_nets:
            assert improved.assignment[stub.stub_id] == raw.assignment[stub.stub_id]


def test_ideal_attack_gets_regular_nets_right(attacked_design):
    _, _, _, view = attacked_design
    result = ideal_attack(view, seed=1)
    ccr = compute_ccr(result)
    assert ccr.regular_ccr == 100.0
    assert ccr.key_physical_ccr <= 100.0


def test_ideal_attack_oer_stays_high(attacked_design):
    """The paper's strongest experiment: even with all regular nets
    given, random key guessing leaves the netlist erroneous."""
    circuit, _, _, view = attacked_design
    errors = 0
    runs = 8
    for index in range(runs):
        result = ideal_attack(view, seed=100 + index)
        report = compute_hd_oer(circuit, result.recovered, patterns=2048)
        if report.oer_percent > 0:
            errors += 1
    assert errors >= runs - 1  # at most one lucky guess tolerated


def test_hint_toggles_change_behaviour(attacked_design):
    _, _, _, view = attacked_design
    full = proximity_attack(view)
    no_hints = proximity_attack(
        view,
        ProximityAttackConfig(
            use_loop_hint=False, use_timing_hint=False, use_load_hint=False
        ),
    )
    assert full.diagnostics["rejected"] != no_hints.diagnostics["rejected"]


def test_sat_futility(attacked_design):
    _, locked, _, _ = attacked_design
    report = demonstrate_sat_futility(locked, sample_keys=6)
    assert report.all_keys_consistent
    assert not report.distinguishing_found


def test_rebuild_with_empty_assignment_uses_nearest(attacked_design):
    _, _, _, view = attacked_design
    rebuilt = rebuild_netlist(view, {}, "fallback")
    rebuilt.topological_order()  # acyclic and complete


# ----------------------------------------------------------------------
# Metrics on controlled assignments
# ----------------------------------------------------------------------
def test_ccr_on_perfect_assignment(attacked_design):
    _, _, _, view = attacked_design
    from repro.attacks.result import AttackResult

    perfect = AttackResult(
        view, {s.stub_id: s.net for s in view.sink_stubs}, strategy="oracle"
    )
    ccr = compute_ccr(perfect)
    assert ccr.regular_ccr == 100.0
    assert ccr.key_physical_ccr == 100.0
    assert ccr.key_logical_ccr == 100.0
    pnr = compute_pnr(perfect)
    assert pnr.pnr_percent == 100.0


def test_hd_oer_identical_netlists(attacked_design):
    circuit, _, _, _ = attacked_design
    report = compute_hd_oer(circuit, circuit.copy(), patterns=1024)
    assert report.hd_percent == 0.0
    assert report.oer_percent == 0.0


def test_hd_oer_interface_mismatch_rejected(attacked_design):
    circuit, _, _, _ = attacked_design
    other = build_random_circuit(41, num_inputs=5, num_gates=30)
    with pytest.raises(ValueError):
        compute_hd_oer(circuit, other, patterns=64)


def test_hd_oer_inverted_output():
    circuit = build_random_circuit(42, num_inputs=6, num_gates=30, num_outputs=2)
    from repro.netlist.gate_types import GateType

    flipped = circuit.copy("flip")
    out = flipped.outputs[0]
    inv = flipped.fresh_name("inv")
    flipped.add(inv, GateType.NOT, (out,))
    flipped.rename_output(out, inv)
    report = compute_hd_oer(circuit, flipped, patterns=2048)
    assert report.oer_percent == 100.0
    assert 100.0 / len(circuit.outputs) == pytest.approx(
        report.hd_percent, rel=0.05
    )
