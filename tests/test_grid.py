"""Grid compiler: sibling planning, fused execution, bit-identity.

The contract under test is strict: fusion may change *where* shared
artifacts are computed and how compiled programs travel — never what is
computed.  Every fused/unfused comparison below goes through
:func:`repro.runner.serialize.canonical_json`, the same canonical form
CI diffs, so any numeric drift in any metric fails loudly.
"""

from __future__ import annotations

import pickle
from dataclasses import replace

import pytest

from repro.benchgen import load_iscas85
from repro.runner.engine import (
    CellExecutionError,
    run_attack_campaign,
    run_campaign,
)
from repro.runner.grid import plan_campaign, run_fused_cells
from repro.runner.serialize import canonical_json, result_record
from repro.runner.spec import AttackCampaignSpec, CellSpec
from repro.sim.compiled import compile_circuit
from repro.sim.shared import (
    attach_program,
    export_program,
    install_program,
    release_segment,
)

BASE = CellSpec(
    benchmark="random:i10-o5-g90",
    split_layer=4,
    key_bits=10,
    hd_patterns=512,
    max_candidates=60,
)

#: Three siblings over one layout plus one cell on its own layout —
#: two groups over a single lock.
GRID = [
    BASE,
    replace(BASE, hd_seed=6),
    replace(BASE, hd_seed=7),
    replace(BASE, split_layer=6),
]

ATTACKS = AttackCampaignSpec(
    benchmarks=("random:i10-o5-g90",),
    scenarios=("netflow", "random"),
    split_layers=(4,),
    key_bits=(10,),
    hd_patterns=512,
    max_candidates=60,
)


def _canon(result) -> str:
    return canonical_json([result_record(r) for r in result.cells])


# ---------------------------------------------------------------------------
# Planning


def test_plan_groups_siblings_by_layout():
    plan = plan_campaign(GRID)
    assert len(plan.groups) == 2
    assert plan.groups[0].indices == (0, 1, 2)  # hd_seed is not a layout axis
    assert plan.groups[1].indices == (3,)  # split layer re-keys the layout
    assert plan.unique_locks == 1  # both splits lock identically
    assert "4 cells" in plan.describe()


def test_plan_groups_attack_scenarios_as_siblings():
    cells = ATTACKS.cells()
    plan = plan_campaign(cells)
    assert len(plan.groups) == 1
    assert plan.groups[0].indices == tuple(range(len(cells)))


def test_plan_preserves_input_order_and_distinct_locks():
    other = replace(BASE, key_bits=8)
    plan = plan_campaign([other, BASE])
    assert [g.indices for g in plan.groups] == [(0,), (1,)]
    assert plan.unique_locks == 2


# ---------------------------------------------------------------------------
# Fused execution: bit-identity with the legacy path


@pytest.fixture(scope="module")
def unfused_runs():
    return run_campaign(GRID, workers=1, use_cache=False, fuse=False)


def test_fused_serial_bit_identical(unfused_runs):
    fused = run_campaign(GRID, workers=1, use_cache=False, fuse=True)
    assert _canon(fused) == _canon(unfused_runs)
    assert list(fused.runs()) == list(unfused_runs.runs())


def test_fused_pool_bit_identical(unfused_runs, tmp_path):
    """Two workers over a real cache: shared-memory oracle shipping."""
    fused = run_campaign(
        GRID, workers=2, cache_dir=tmp_path, use_cache=True, fuse=True
    )
    assert _canon(fused) == _canon(unfused_runs)


def test_affinity_routing_bit_identical(unfused_runs, tmp_path):
    """Lock-affine bundles vs per-group dispatch: same records exactly."""
    per_group = run_fused_cells(
        GRID, workers=2, cache_dir=tmp_path / "a", affinity=False
    )
    bundled = run_fused_cells(
        GRID, workers=2, cache_dir=tmp_path / "b", affinity=True
    )
    records = canonical_json([result_record(r) for r in bundled])
    assert records == canonical_json([result_record(r) for r in per_group])
    assert records == _canon(unfused_runs)


def test_fused_attacks_bit_identical():
    unfused = run_attack_campaign(
        ATTACKS, workers=1, use_cache=False, fuse=False
    )
    fused = run_attack_campaign(
        ATTACKS, workers=1, use_cache=False, fuse=True
    )
    assert _canon(fused) == _canon(unfused)
    assert list(fused.outcomes()) == list(unfused.outcomes())


def test_fused_empty_grid():
    assert run_fused_cells([], workers=1, use_cache=False) == []


def test_env_knob_routes_through_grid(monkeypatch):
    import repro.runner.grid as grid_module

    calls = []
    original = grid_module.run_fused_cells

    def recorder(cells, workers, cache_dir, use_cache):
        calls.append(tuple(cells))
        return original(cells, workers, cache_dir, use_cache)

    monkeypatch.setattr(grid_module, "run_fused_cells", recorder)
    # Fusion is the default: no env var needed to hit the grid compiler.
    monkeypatch.delenv("REPRO_GRID_FUSE", raising=False)
    run_campaign([BASE], workers=1, use_cache=False)
    assert calls == [(BASE,)]
    # REPRO_GRID_FUSE=0 opts out.
    monkeypatch.setenv("REPRO_GRID_FUSE", "0")
    run_campaign([BASE], workers=1, use_cache=False)
    assert len(calls) == 1
    # Explicit fuse=True overrides the opt-out; fuse=False the default.
    run_campaign([BASE], workers=1, use_cache=False, fuse=True)
    assert len(calls) == 2
    monkeypatch.delenv("REPRO_GRID_FUSE", raising=False)
    run_campaign([BASE], workers=1, use_cache=False, fuse=False)
    assert len(calls) == 2


def test_fused_wraps_member_failure_with_cell_id():
    bad = replace(BASE, benchmark="random:i6-o4-g40", key_bits=64)
    with pytest.raises(CellExecutionError) as excinfo:
        run_fused_cells([BASE, bad], workers=1, use_cache=False)
    assert excinfo.value.cell_id == bad.cell_id
    # The exception must survive a pool boundary intact.
    clone = pickle.loads(pickle.dumps(excinfo.value))
    assert clone.cell_id == bad.cell_id
    assert clone.detail == excinfo.value.detail


# ---------------------------------------------------------------------------
# Shared-memory program transport


def test_shared_program_round_trip():
    circuit = load_iscas85("c432", seed=1).combinational_core()
    compiled = compile_circuit(circuit)
    handle, segment = export_program(compiled)
    try:
        clone = attach_program(handle)
        stimulus = {net: (1 << 64) - 1 - i for i, net in enumerate(circuit.inputs)}
        want = compiled.simulate_batch_array(stimulus, 64, [None])
        got = clone.simulate_batch_array(stimulus, 64, [None])
        assert (want == got).all()
        # Install onto a pickle-round-tripped circuit (a worker's copy):
        # the compiled cache must serve the attached program afterwards.
        worker_circuit = pickle.loads(pickle.dumps(circuit))
        install_program(worker_circuit, clone)
        assert compile_circuit(worker_circuit) is clone
    finally:
        release_segment(segment)


def test_install_program_rejects_mismatched_circuit():
    circuit = load_iscas85("c432", seed=1).combinational_core()
    other = load_iscas85("c17", seed=1).combinational_core()
    handle, segment = export_program(compile_circuit(circuit))
    try:
        clone = attach_program(handle)
        with pytest.raises(ValueError):
            install_program(other, clone)
    finally:
        release_segment(segment)
