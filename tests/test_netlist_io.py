"""Bench and Verilog I/O tests: round-trips and error handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import bench_io, verilog_io
from repro.netlist.bench_io import BenchParseError
from repro.netlist.circuit import NetlistError
from repro.netlist.gate_types import GateType
from repro.sim.bitparallel import functions_equal_exhaustive
from tests.conftest import build_random_circuit


def test_bench_parse_c17_text():
    from repro.benchgen import C17_BENCH

    circuit = bench_io.loads(C17_BENCH)
    assert circuit.num_logic_gates() == 6
    assert set(circuit.inputs) == {"N1", "N2", "N3", "N6", "N7"}
    assert circuit.outputs == ["N22", "N23"]


def test_bench_roundtrip(c17_circuit):
    text = bench_io.dumps(c17_circuit)
    again = bench_io.loads(text, name="c17")
    assert functions_equal_exhaustive(c17_circuit, again)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 200))
def test_bench_roundtrip_random(seed):
    circuit = build_random_circuit(seed, num_inputs=5, num_gates=25)
    again = bench_io.loads(bench_io.dumps(circuit), name=circuit.name)
    assert functions_equal_exhaustive(circuit, again)


def test_bench_file_io(tmp_path, c17_circuit):
    path = tmp_path / "c17.bench"
    bench_io.dump(c17_circuit, path)
    again = bench_io.load(path)
    assert again.name == "c17"
    assert functions_equal_exhaustive(c17_circuit, again)


def test_bench_comments_and_blank_lines():
    text = """
# a comment
INPUT(a)   # trailing comment
OUTPUT(z)

z = NOT(a)
"""
    circuit = bench_io.loads(text)
    assert circuit.gates["z"].gate_type is GateType.NOT


def test_bench_tie_extension():
    text = "OUTPUT(z)\nk = TIEHI()\nz = BUF(k)\n"
    circuit = bench_io.loads(text)
    assert circuit.gates["k"].gate_type is GateType.TIEHI


def test_bench_rejects_garbage():
    with pytest.raises(BenchParseError):
        bench_io.loads("INPUT(a)\nz <= NOT(a)\n")


def test_bench_rejects_unknown_op():
    with pytest.raises(BenchParseError):
        bench_io.loads("INPUT(a)\nz = FROB(a)\n")


def test_bench_rejects_undriven_output():
    with pytest.raises(NetlistError):
        bench_io.loads("INPUT(a)\nOUTPUT(zz)\nz = NOT(a)\n")


def test_verilog_roundtrip(c17_circuit):
    text = verilog_io.dumps(c17_circuit)
    again = verilog_io.loads(text)
    assert sorted(again.inputs) == sorted(c17_circuit.inputs)
    assert functions_equal_exhaustive(c17_circuit, again)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 200))
def test_verilog_roundtrip_random(seed):
    circuit = build_random_circuit(seed, num_inputs=5, num_gates=25)
    again = verilog_io.loads(verilog_io.dumps(circuit))
    assert functions_equal_exhaustive(circuit, again)


def test_verilog_parses_comments_and_instances():
    text = """
// line comment
module top (a, b, z);
  input a, b;  /* block
                 comment */
  output z;
  wire t;
  nand U1 (t, a, b);
  not  U2 (z, t);
endmodule
"""
    circuit = verilog_io.loads(text)
    assert circuit.gates["z"].gate_type is GateType.NOT
    assert circuit.gates["t"].fanin == ("a", "b")


def test_verilog_anonymous_instances():
    text = "module m (a, z); input a; output z; not (z, a); endmodule"
    circuit = verilog_io.loads(text)
    assert circuit.gates["z"].gate_type is GateType.NOT


def test_verilog_rejects_no_module():
    with pytest.raises(verilog_io.VerilogParseError):
        verilog_io.loads("not (z, a);")


def test_verilog_rejects_missing_endmodule():
    with pytest.raises(verilog_io.VerilogParseError):
        verilog_io.loads("module m (a); input a;")


def test_verilog_file_io(tmp_path, c17_circuit):
    path = tmp_path / "c17.v"
    verilog_io.dump(c17_circuit, path)
    again = verilog_io.load(path)
    assert functions_equal_exhaustive(c17_circuit, again)


def test_verilog_sanitizes_module_name():
    circuit = build_random_circuit(1, num_inputs=3, num_gates=10)
    circuit.name = "9bad name!"
    text = verilog_io.dumps(circuit)
    assert "module m_9bad_name_" in text
